"""World state: accounts and contract storage over Merkle Patricia Tries.

Uses Ethereum's "secure trie" convention — account keys are
``keccak256(address)`` and storage keys are ``keccak256(slot)`` — so the
account/storage proofs served to PARP light clients (``eth_getProof``-style)
have the same shape and size characteristics as real Ethereum proofs.

All mutation goes straight through the tries and the node store is
append-only, so a snapshot is just a state root, and reverting a failed
contract call (or unwinding a speculative block) is ``revert(root)``.

Hot-path plumbing: secure-trie key derivation (one ``keccak256`` per
account access, ~280 µs of pure-Python hashing) is memoized in a bounded
module-level table shared by every :class:`StateDB` instance — the
per-request read views the PARP server creates all hit the same memo.
Likewise the tries' decoded-node LRU is created once per world state and
threaded through ``at_root``/``revert`` and every per-account storage trie,
so historical views reuse each other's decode work.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..crypto import keccak256
from ..crypto.keys import Address
from ..metrics.cache import LRUCache
from ..rlp import codec as rlp
from ..trie.mpt import EMPTY_TRIE_ROOT, MerklePatriciaTrie
from ..trie.proof import generate_proof
from .account import Account

__all__ = ["StateDB", "InsufficientBalance"]


class InsufficientBalance(ValueError):
    """Raised when a transfer or fee debit exceeds the account balance."""


#: memo for keccak256(address) / keccak256(slot) — bounded by wholesale
#: clearing (cheaper than LRU bookkeeping on a path hit millions of times;
#: one refill cycle costs exactly what the seed paid on *every* access).
_SECURE_KEY_MEMO_MAX = 1 << 17
_secure_key_memo: dict[bytes, bytes] = {}


def _secure_key(raw: bytes) -> bytes:
    key = _secure_key_memo.get(raw)
    if key is None:
        if len(_secure_key_memo) >= _SECURE_KEY_MEMO_MAX:
            _secure_key_memo.clear()
        key = keccak256(raw)
        _secure_key_memo[raw] = key
    return key


def _storage_key(slot: bytes) -> bytes:
    if len(slot) != 32:
        raise ValueError(f"storage slots are 32 bytes, got {len(slot)}")
    return _secure_key(slot)


class StateDB:
    """Mutable world state with snapshot/revert and proof generation."""

    def __init__(self, db: Optional[dict[bytes, bytes]] = None,
                 root_hash: bytes = EMPTY_TRIE_ROOT,
                 node_cache: Optional[LRUCache] = None) -> None:
        self._db: dict[bytes, bytes] = db if db is not None else {}
        self._trie = MerklePatriciaTrie(self._db, root_hash,
                                        node_cache=node_cache)

    # ------------------------------------------------------------------ #
    # Accounts
    # ------------------------------------------------------------------ #

    @property
    def root_hash(self) -> bytes:
        """The state root (commits any pending trie overlay writes)."""
        return self._trie.root_hash

    @property
    def node_cache(self) -> LRUCache:
        """The decoded-node LRU shared by the account and storage tries."""
        return self._trie.node_cache

    def commit(self) -> bytes:
        """Flush the account trie's write overlay; returns the state root.

        This is the batch commit point: a block's worth of account writes is
        hashed here in one pass over the distinct dirty nodes, instead of
        once per ``set_account`` as the pre-overlay engine did.
        """
        return self._trie.commit()

    def get_account(self, address: Address) -> Account:
        """Fetch an account; absent addresses read as the empty account."""
        raw = self._trie.get(_secure_key(address.to_bytes()))
        if raw is None:
            return Account()
        return Account.decode(raw)

    def set_account(self, address: Address, account: Account) -> None:
        key = _secure_key(address.to_bytes())
        if account.is_empty:
            self._trie.delete(key)
        else:
            self._trie.put(key, account.encode())

    def account_exists(self, address: Address) -> bool:
        return self._trie.get(_secure_key(address.to_bytes())) is not None

    # -- balances ------------------------------------------------------- #

    def balance_of(self, address: Address) -> int:
        return self.get_account(address).balance

    def add_balance(self, address: Address, amount: int) -> None:
        if amount < 0:
            raise ValueError("use sub_balance for debits")
        account = self.get_account(address)
        self.set_account(address, account.with_balance(account.balance + amount))

    def sub_balance(self, address: Address, amount: int) -> None:
        if amount < 0:
            raise ValueError("use add_balance for credits")
        account = self.get_account(address)
        if account.balance < amount:
            raise InsufficientBalance(
                f"{address.hex()} has {account.balance}, needs {amount}"
            )
        self.set_account(address, account.with_balance(account.balance - amount))

    def transfer(self, sender: Address, recipient: Address, amount: int) -> None:
        """Atomic balance move; raises before mutating when underfunded."""
        if amount < 0:
            raise ValueError("cannot transfer a negative amount")
        self.sub_balance(sender, amount)
        self.add_balance(recipient, amount)

    # -- nonces ---------------------------------------------------------- #

    def nonce_of(self, address: Address) -> int:
        return self.get_account(address).nonce

    def increment_nonce(self, address: Address) -> None:
        account = self.get_account(address)
        self.set_account(address, account.with_nonce(account.nonce + 1))

    # ------------------------------------------------------------------ #
    # Contract storage (per-account storage tries, shared node store)
    # ------------------------------------------------------------------ #

    def get_storage(self, address: Address, slot: bytes) -> bytes:
        """Read a storage slot; absent slots read as b'' (the zero value)."""
        key = _storage_key(slot)
        account = self.get_account(address)
        if account.storage_root == EMPTY_TRIE_ROOT:
            return b""
        storage = self._storage_trie(account.storage_root)
        raw = storage.get(key)
        if raw is None:
            return b""
        value = rlp.decode(raw)
        if not isinstance(value, bytes):
            raise rlp.RLPError("storage value must be a byte string")
        return value

    def set_storage(self, address: Address, slot: bytes, value: bytes) -> None:
        """Write a storage slot; writing b'' deletes it (zeroing)."""
        account = self.get_account(address)
        storage = self._storage_trie(account.storage_root)
        key = _storage_key(slot)
        if value == b"":
            storage.delete(key)
        else:
            storage.put(key, rlp.encode(value))
        self.set_account(address, account.with_storage_root(storage.root_hash))

    def _storage_trie(self, storage_root: bytes) -> MerklePatriciaTrie:
        """A per-account storage trie sharing the world's decoded-node LRU."""
        return self._trie.at_root(storage_root)

    # ------------------------------------------------------------------ #
    # Snapshots & proofs
    # ------------------------------------------------------------------ #

    def snapshot(self) -> bytes:
        """Capture the current state root for a later :meth:`revert`.

        Forces a commit of the trie overlay, so the returned root is always
        resolvable from the append-only node store.
        """
        return self._trie.snapshot()

    def revert(self, root_hash: bytes) -> None:
        """Rewind to a prior snapshot (node store is append-only)."""
        self._trie = MerklePatriciaTrie(self._db, root_hash,
                                        node_cache=self._trie.node_cache)

    def at_root(self, root_hash: bytes) -> "StateDB":
        """A read view of the state at a historical root.

        Shares the node store *and* the decoded-node cache, so the
        per-request views the serving layer creates are warm from the start.
        """
        return StateDB(self._db, root_hash, node_cache=self._trie.node_cache)

    def prove_account(self, address: Address) -> list[bytes]:
        """Merkle proof of the account record under the current state root."""
        return generate_proof(self._trie, _secure_key(address.to_bytes()))

    def prove_storage(self, address: Address, slot: bytes) -> list[bytes]:
        """Merkle proof of a storage slot under the account's storage root."""
        account = self.get_account(address)
        storage = self._storage_trie(account.storage_root)
        return generate_proof(storage, _storage_key(slot))

    def accounts(self) -> Iterator[tuple[bytes, Account]]:
        """Iterate (hashed address key, account) pairs."""
        for key, raw in self._trie.items():
            yield key, Account.decode(raw)
