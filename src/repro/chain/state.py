"""World state: accounts and contract storage over Merkle Patricia Tries.

Uses Ethereum's "secure trie" convention — account keys are
``keccak256(address)`` and storage keys are ``keccak256(slot)`` — so the
account/storage proofs served to PARP light clients (``eth_getProof``-style)
have the same shape and size characteristics as real Ethereum proofs.

All mutation goes straight through the tries and the node store is
append-only, so a snapshot is just a state root, and reverting a failed
contract call (or unwinding a speculative block) is ``revert(root)``.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..crypto import keccak256
from ..crypto.keys import Address
from ..rlp import codec as rlp
from ..trie.mpt import EMPTY_TRIE_ROOT, MerklePatriciaTrie
from ..trie.proof import generate_proof
from .account import Account

__all__ = ["StateDB", "InsufficientBalance"]


class InsufficientBalance(ValueError):
    """Raised when a transfer or fee debit exceeds the account balance."""


def _storage_key(slot: bytes) -> bytes:
    if len(slot) != 32:
        raise ValueError(f"storage slots are 32 bytes, got {len(slot)}")
    return keccak256(slot)


class StateDB:
    """Mutable world state with snapshot/revert and proof generation."""

    def __init__(self, db: Optional[dict[bytes, bytes]] = None,
                 root_hash: bytes = EMPTY_TRIE_ROOT) -> None:
        self._db: dict[bytes, bytes] = db if db is not None else {}
        self._trie = MerklePatriciaTrie(self._db, root_hash)

    # ------------------------------------------------------------------ #
    # Accounts
    # ------------------------------------------------------------------ #

    @property
    def root_hash(self) -> bytes:
        return self._trie.root_hash

    def get_account(self, address: Address) -> Account:
        """Fetch an account; absent addresses read as the empty account."""
        raw = self._trie.get(keccak256(address.to_bytes()))
        if raw is None:
            return Account()
        return Account.decode(raw)

    def set_account(self, address: Address, account: Account) -> None:
        key = keccak256(address.to_bytes())
        if account.is_empty:
            self._trie.delete(key)
        else:
            self._trie.put(key, account.encode())

    def account_exists(self, address: Address) -> bool:
        return self._trie.get(keccak256(address.to_bytes())) is not None

    # -- balances ------------------------------------------------------- #

    def balance_of(self, address: Address) -> int:
        return self.get_account(address).balance

    def add_balance(self, address: Address, amount: int) -> None:
        if amount < 0:
            raise ValueError("use sub_balance for debits")
        account = self.get_account(address)
        self.set_account(address, account.with_balance(account.balance + amount))

    def sub_balance(self, address: Address, amount: int) -> None:
        if amount < 0:
            raise ValueError("use add_balance for credits")
        account = self.get_account(address)
        if account.balance < amount:
            raise InsufficientBalance(
                f"{address.hex()} has {account.balance}, needs {amount}"
            )
        self.set_account(address, account.with_balance(account.balance - amount))

    def transfer(self, sender: Address, recipient: Address, amount: int) -> None:
        """Atomic balance move; raises before mutating when underfunded."""
        if amount < 0:
            raise ValueError("cannot transfer a negative amount")
        self.sub_balance(sender, amount)
        self.add_balance(recipient, amount)

    # -- nonces ---------------------------------------------------------- #

    def nonce_of(self, address: Address) -> int:
        return self.get_account(address).nonce

    def increment_nonce(self, address: Address) -> None:
        account = self.get_account(address)
        self.set_account(address, account.with_nonce(account.nonce + 1))

    # ------------------------------------------------------------------ #
    # Contract storage (per-account storage tries, shared node store)
    # ------------------------------------------------------------------ #

    def get_storage(self, address: Address, slot: bytes) -> bytes:
        """Read a storage slot; absent slots read as b'' (the zero value)."""
        key = _storage_key(slot)
        account = self.get_account(address)
        if account.storage_root == EMPTY_TRIE_ROOT:
            return b""
        storage = MerklePatriciaTrie(self._db, account.storage_root)
        raw = storage.get(key)
        if raw is None:
            return b""
        value = rlp.decode(raw)
        if not isinstance(value, bytes):
            raise rlp.RLPError("storage value must be a byte string")
        return value

    def set_storage(self, address: Address, slot: bytes, value: bytes) -> None:
        """Write a storage slot; writing b'' deletes it (zeroing)."""
        account = self.get_account(address)
        storage = MerklePatriciaTrie(self._db, account.storage_root)
        key = _storage_key(slot)
        if value == b"":
            storage.delete(key)
        else:
            storage.put(key, rlp.encode(value))
        self.set_account(address, account.with_storage_root(storage.root_hash))

    # ------------------------------------------------------------------ #
    # Snapshots & proofs
    # ------------------------------------------------------------------ #

    def snapshot(self) -> bytes:
        """Capture the current state root for a later :meth:`revert`."""
        return self._trie.root_hash

    def revert(self, root_hash: bytes) -> None:
        """Rewind to a prior snapshot (node store is append-only)."""
        self._trie = MerklePatriciaTrie(self._db, root_hash)

    def at_root(self, root_hash: bytes) -> "StateDB":
        """A read view of the state at a historical root."""
        return StateDB(self._db, root_hash)

    def prove_account(self, address: Address) -> list[bytes]:
        """Merkle proof of the account record under the current state root."""
        return generate_proof(self._trie, keccak256(address.to_bytes()))

    def prove_storage(self, address: Address, slot: bytes) -> list[bytes]:
        """Merkle proof of a storage slot under the account's storage root."""
        account = self.get_account(address)
        storage = MerklePatriciaTrie(self._db, account.storage_root)
        return generate_proof(storage, _storage_key(slot))

    def accounts(self) -> Iterator[tuple[bytes, Account]]:
        """Iterate (hashed address key, account) pairs."""
        for key, raw in self._trie.items():
            yield key, Account.decode(raw)
