"""World state: accounts and contract storage over Merkle Patricia Tries.

Uses Ethereum's "secure trie" convention — account keys are
``keccak256(address)`` and storage keys are ``keccak256(slot)`` — so the
account/storage proofs served to PARP light clients (``eth_getProof``-style)
have the same shape and size characteristics as real Ethereum proofs.

All mutation goes straight through the tries and the node store is
append-only, so a snapshot is just a state root, and reverting a failed
contract call (or unwinding a speculative block) is ``revert(root)``.

Hot-path plumbing: secure-trie key derivation (one ``keccak256`` per
account access, ~280 µs of pure-Python hashing) is memoized in a bounded,
locked LRU shared by every :class:`StateDB` instance — the per-request read
views the PARP server creates all hit the same memo, including from
concurrent sessions.  Likewise the tries' decoded-node LRU is created once
per world state and threaded through ``at_root``/``revert`` and every
per-account storage trie, so historical views reuse each other's decode
work.

Storage-write batching: ``set_storage`` does *not* re-derive the account's
``storage_root`` per slot.  Dirty per-account storage tries accumulate in
an overlay map and are each flushed exactly once at :meth:`StateDB.commit`
(``snapshot``/``root_hash`` flush them too, but as *staging* commits),
which is when the account records pick up their new storage roots — the
same deferred-hashing win the account trie got in PR 3, extended to
SSTORE-heavy contract workloads.  Reads of dirty slots see the uncommitted
values; ``revert`` drops the dirty map.  Only ``commit()`` itself cuts a
durable store batch, so on a disk backend one sealed block is one atomic,
fsynced write tagged with the header's state root.

Persistence: the backing node store is pluggable
(:mod:`repro.storage`) — pass a dict / ``MemoryNodeStore`` for the seed's
in-memory behaviour, an :class:`~repro.storage.AppendOnlyFileStore` (or a
path) for a disk-resident state that survives restarts.
"""

from __future__ import annotations

from typing import Iterator, Optional, Union

from ..crypto import keccak256
from ..crypto.keys import Address
from ..metrics.cache import LRUCache
from ..rlp import codec as rlp
from ..storage.nodestore import NodeStore, as_node_store
from ..trie.mpt import EMPTY_TRIE_ROOT, MerklePatriciaTrie
from ..trie.proof import generate_proof
from ..trie.shard import (
    ShardRange,
    collect_subtree,
    extract_shard_nodes,
    shard_commitment,
    shard_head,
)
from .account import Account

__all__ = ["StateDB", "InsufficientBalance"]


class InsufficientBalance(ValueError):
    """Raised when a transfer or fee debit exceeds the account balance."""


#: memo for keccak256(address) / keccak256(slot) — a bounded, locked LRU
#: shared process-wide.  The seed used a module dict cleared wholesale at
#: capacity, which cold-started the whole memo periodically and raced under
#: the concurrent-session server; the LRU evicts one-at-a-time under a lock.
_SECURE_KEY_MEMO_MAX = 1 << 17
_secure_key_memo: LRUCache = LRUCache(capacity=_SECURE_KEY_MEMO_MAX)


def _secure_key(raw: bytes) -> bytes:
    key = _secure_key_memo.get(raw)
    if key is None:
        key = keccak256(raw)
        _secure_key_memo.put(raw, key)
    return key


def _storage_key(slot: bytes) -> bytes:
    if len(slot) != 32:
        raise ValueError(f"storage slots are 32 bytes, got {len(slot)}")
    return _secure_key(slot)


class StateDB:
    """Mutable world state with snapshot/revert and proof generation."""

    def __init__(self, db: Union[None, dict, NodeStore, str] = None,
                 root_hash: bytes = EMPTY_TRIE_ROOT,
                 node_cache: Optional[LRUCache] = None,
                 retention=None) -> None:
        self._db: NodeStore = as_node_store(db, retention=retention)
        self._trie = MerklePatriciaTrie(self._db, root_hash,
                                        node_cache=node_cache)
        #: per-address dirty storage tries: mutated since the last commit,
        #: their accounts' storage_root fields not yet re-derived
        self._dirty_storage: dict[Address, MerklePatriciaTrie] = {}
        #: commit-count probe: how many storage tries have been flushed over
        #: this instance's lifetime (one per dirty account per commit — the
        #: regression tests pin this against the per-slot-commit seed).
        self.storage_trie_commits: int = 0

    # ------------------------------------------------------------------ #
    # Accounts
    # ------------------------------------------------------------------ #

    @property
    def root_hash(self) -> bytes:
        """The state root (commits pending storage + account overlays).

        A *staging* commit: reading the root mid-block must never cut a
        durable store batch, or crash recovery could land on a root no
        header commits to.  Durability is cut by :meth:`commit` — the
        block-sealing call."""
        return self.commit(flush_store=False)

    @property
    def node_cache(self) -> LRUCache:
        """The decoded-node LRU shared by the account and storage tries."""
        return self._trie.node_cache

    @property
    def node_store(self) -> NodeStore:
        """The backing node store shared by the account and storage tries."""
        return self._db

    def commit(self, flush_store: bool = True) -> bytes:
        """Flush dirty storage tries, then the account trie; returns the root.

        This is the batch commit point: each account's storage trie touched
        since the last commit is hashed here in one pass (its account record
        picking up the new ``storage_root``), then a block's worth of account
        writes is hashed in one pass over the distinct dirty nodes.  The
        account trie commits *last* and storage flushes are staged, so a
        durable node store sees exactly one batch, tagged with the state
        root — the recovery point after a crash.

        ``flush_store=False`` stages everything in the store without cutting
        a durable batch — the per-transaction commit points inside block
        building use it (via :meth:`snapshot`) so that a *sealed block* is
        the store's atomicity unit and crash recovery can only land on a
        header-committed state root.
        """
        if self._dirty_storage:
            dirty, self._dirty_storage = self._dirty_storage, {}
            for address, storage in dirty.items():
                account = self.get_account(address)
                new_root = storage.commit(flush_store=False)
                self.storage_trie_commits += 1
                self.set_account(address, account.with_storage_root(new_root))
        # The store is tagged here, not inside the trie: even when the
        # account trie is already clean (e.g. the block's last transaction
        # failed and was reverted to the previous per-tx snapshot), nodes
        # staged by earlier flush_store=False commits must still become
        # durable under the sealed root.
        root = self._trie.commit(flush_store=False)
        if flush_store:
            self._db.commit(root)
        return root

    def compact(self, retention=None):
        """Durably commit, then compact the backing store down to the
        retention policy's live set (see
        :func:`~repro.storage.compaction.compact_node_store`).

        Returns the :class:`~repro.storage.compaction.CompactionReport`.
        Standalone-StateDB convenience — a chain-owned state is compacted
        through ``Blockchain.compact``, which also prunes the block log.
        """
        from ..storage.compaction import compact_node_store

        self.commit()
        return compact_node_store(self._db, retention)

    def get_account(self, address: Address) -> Account:
        """Fetch an account; absent addresses read as the empty account.

        Note: between ``set_storage`` and :meth:`commit` the returned
        record's ``storage_root`` is the last committed one — pending slot
        writes are visible through :meth:`get_storage`, not here.
        """
        raw = self._trie.get(_secure_key(address.to_bytes()))
        if raw is None:
            return Account()
        return Account.decode(raw)

    def set_account(self, address: Address, account: Account) -> None:
        key = _secure_key(address.to_bytes())
        if account.is_empty:
            storage = self._dirty_storage.get(address)
            if storage is not None and not storage.is_empty:
                # The record reads empty only because its storage_root is
                # stale: pending slot writes make this account non-empty
                # (the seed's per-slot commit would already have stamped
                # the root in).  Keep the record; commit() stamps the real
                # root — and deletes it then if the storage zeroed out.
                self._trie.put(key, account.encode())
                return
            self._dirty_storage.pop(address, None)
            self._trie.delete(key)
        else:
            self._trie.put(key, account.encode())

    def account_exists(self, address: Address) -> bool:
        if self._trie.get(_secure_key(address.to_bytes())) is not None:
            return True
        # Pending slot writes make an account exist before its record is
        # written at commit — the seed stamped the record per slot write,
        # and gas metering (NEW_ACCOUNT_GAS) keys off existence.
        storage = self._dirty_storage.get(address)
        return storage is not None and not storage.is_empty

    # -- balances ------------------------------------------------------- #

    def balance_of(self, address: Address) -> int:
        return self.get_account(address).balance

    def add_balance(self, address: Address, amount: int) -> None:
        if amount < 0:
            raise ValueError("use sub_balance for debits")
        account = self.get_account(address)
        self.set_account(address, account.with_balance(account.balance + amount))

    def sub_balance(self, address: Address, amount: int) -> None:
        if amount < 0:
            raise ValueError("use add_balance for credits")
        account = self.get_account(address)
        if account.balance < amount:
            raise InsufficientBalance(
                f"{address.hex()} has {account.balance}, needs {amount}"
            )
        self.set_account(address, account.with_balance(account.balance - amount))

    def transfer(self, sender: Address, recipient: Address, amount: int) -> None:
        """Atomic balance move; raises before mutating when underfunded."""
        if amount < 0:
            raise ValueError("cannot transfer a negative amount")
        self.sub_balance(sender, amount)
        self.add_balance(recipient, amount)

    # -- nonces ---------------------------------------------------------- #

    def nonce_of(self, address: Address) -> int:
        return self.get_account(address).nonce

    def increment_nonce(self, address: Address) -> None:
        account = self.get_account(address)
        self.set_account(address, account.with_nonce(account.nonce + 1))

    # ------------------------------------------------------------------ #
    # Contract storage (per-account storage tries, shared node store)
    # ------------------------------------------------------------------ #

    def get_storage(self, address: Address, slot: bytes) -> bytes:
        """Read a storage slot; absent slots read as b'' (the zero value).

        Dirty slots — written since the last commit — are served from the
        pending storage trie, so a contract always reads its own writes.
        """
        key = _storage_key(slot)
        storage = self._dirty_storage.get(address)
        if storage is None:
            account = self.get_account(address)
            if account.storage_root == EMPTY_TRIE_ROOT:
                return b""
            storage = self._storage_trie(account.storage_root)
        raw = storage.get(key)
        if raw is None:
            return b""
        value = rlp.decode(raw)
        if not isinstance(value, bytes):
            raise rlp.RLPError("storage value must be a byte string")
        return value

    def set_storage(self, address: Address, slot: bytes, value: bytes) -> None:
        """Write a storage slot; writing b'' deletes it (zeroing).

        The write lands in the account's dirty storage trie.  The account
        record's ``storage_root`` is re-derived once, at :meth:`commit` —
        not here — so an SSTORE-heavy workload pays one storage-trie hash
        pass per account per block instead of one per slot write.
        """
        storage = self._dirty_storage.get(address)
        if storage is None:
            account = self.get_account(address)
            storage = self._storage_trie(account.storage_root)
            self._dirty_storage[address] = storage
        key = _storage_key(slot)
        if value == b"":
            storage.delete(key)
        else:
            storage.put(key, rlp.encode(value))

    def _storage_trie(self, storage_root: bytes) -> MerklePatriciaTrie:
        """A per-account storage trie sharing the world's decoded-node LRU."""
        return self._trie.at_root(storage_root)

    # ------------------------------------------------------------------ #
    # Snapshots & proofs
    # ------------------------------------------------------------------ #

    def snapshot(self) -> bytes:
        """Capture the current state root for a later :meth:`revert`.

        Forces a commit of the dirty storage tries and the account trie
        overlay, so the returned root is always resolvable from the node
        store.  The nodes are *staged*, not durably flushed — snapshots
        mark per-transaction revert points inside a block, and durability
        is cut per sealed block (:meth:`commit`), never mid-block.
        """
        return self.commit(flush_store=False)

    def revert(self, root_hash: bytes) -> None:
        """Rewind to a prior snapshot (node store is append-only).

        Uncommitted writes — the account-trie overlay *and* the dirty
        storage-trie map — are discarded wholesale.
        """
        self._dirty_storage.clear()
        self._trie = MerklePatriciaTrie(self._db, root_hash,
                                        node_cache=self._trie.node_cache)

    def at_root(self, root_hash: bytes) -> "StateDB":
        """A read view of the state at a historical root.

        Shares the node store *and* the decoded-node cache, so the
        per-request views the serving layer creates are warm from the start.
        """
        return StateDB(self._db, root_hash, node_cache=self._trie.node_cache)

    def prove_account(self, address: Address) -> list[bytes]:
        """Merkle proof of the account record under the current state root.

        Commits (staging, not durably tagging — proving is a read and must
        never move the store's recovery root) first: proofs are statements
        about a root, and pending storage writes change the account records
        they prove.
        """
        self.commit(flush_store=False)
        return generate_proof(self._trie, _secure_key(address.to_bytes()))

    def prove_storage(self, address: Address, slot: bytes) -> list[bytes]:
        """Merkle proof of a storage slot under the account's storage root."""
        self.commit(flush_store=False)
        account = self.get_account(address)
        storage = self._storage_trie(account.storage_root)
        return generate_proof(storage, _storage_key(slot))

    def accounts(self) -> Iterator[tuple[bytes, Account]]:
        """Iterate (hashed address key, account) pairs."""
        for key, raw in self._trie.items():
            yield key, Account.decode(raw)

    # ------------------------------------------------------------------ #
    # Sharding (see :mod:`repro.trie.shard`)
    # ------------------------------------------------------------------ #

    def extract_shard(self, shard: ShardRange) -> dict[bytes, bytes]:
        """The node set a shard server materializes for ``shard``.

        The account-trie slice (root node + owned subtrees) plus the *whole*
        storage trie of every in-range account — storage proofs hang off the
        account proof, so an account's storage belongs to its shard.
        """
        self.commit(flush_store=False)
        slice_ = extract_shard_nodes(self._trie, shard)
        nodes = dict(slice_.nodes)
        for _, raw in slice_.items:
            account = Account.decode(raw)
            if account.storage_root != EMPTY_TRIE_ROOT:
                nodes.update(collect_subtree(self._db, account.storage_root))
        return nodes

    def shard_slice(self, shard: ShardRange) -> "StateDB":
        """A read view backed by *only* this shard's nodes.

        Proofs for in-range keys are identical to this state's own; proofs
        for out-of-range keys structurally cannot be produced (the walk hits
        a missing node right below the root) — what makes a shard server
        unable to overstep its advertised range even if it wanted to.
        """
        return StateDB(self.extract_shard(shard), root_hash=self.root_hash)

    def shard_commitment(self, shard: ShardRange) -> bytes:
        """This state's 32-byte commitment for one shard (probe payload)."""
        self.commit(flush_store=False)
        return shard_commitment(self._trie, shard)

    def shard_head(self, shard: ShardRange):
        """The masked root node committed by :meth:`shard_commitment`."""
        self.commit(flush_store=False)
        return shard_head(self._trie, shard)
