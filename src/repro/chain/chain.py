"""The blockchain: canonical chain, mempool, block production, history.

This is the devnet substrate standing in for the paper's local Geth network
(§VI-B).  Key behaviours PARP depends on:

* every header commits to state/tx/receipt roots (light-client verification),
* ``get_block_hash`` serves the 256-block window the Fraud Detection Module
  uses to authenticate submitted headers,
* historical state roots stay resolvable (append-only node store), so proofs
  can be generated for any past block.

The executor is injected (dependency inversion) so this package does not
depend on :mod:`repro.vm`; :mod:`repro.node.devnet` wires them together.
"""

from __future__ import annotations

import time as _time
from typing import Callable, Optional, Protocol, Union

from ..crypto.keys import Address
from ..storage.nodestore import NodeStore, as_node_store
from ..trie.mpt import EMPTY_TRIE_ROOT
from .block import Block, build_receipt_trie, build_transaction_trie
from .genesis import GenesisConfig, make_genesis_block
from .header import BlockHeader
from .receipt import Receipt
from .state import StateDB
from .transaction import Transaction, TransactionError

__all__ = ["Blockchain", "ChainError", "TransactionExecutorProtocol"]


class ChainError(Exception):
    """Raised on invalid blocks or transactions."""


class TransactionExecutorProtocol(Protocol):
    """What the chain needs from an executor (implemented by repro.vm)."""

    def apply(self, state: StateDB, block: "object", tx: Transaction,
              cumulative_gas: int = 0) -> "object":
        ...


class Blockchain:
    """A single-chain (no-fork) blockchain with a simple FIFO mempool.

    The devnet has honest round-robin proposers, so fork choice is out of
    scope — PARP is a serving-layer protocol and assumes chain consensus.
    """

    def __init__(self, genesis: GenesisConfig,
                 executor: Optional[TransactionExecutorProtocol] = None,
                 block_context_factory: Optional[Callable] = None,
                 db: Union[None, dict, NodeStore, str] = None) -> None:
        self.config = genesis
        #: the node store every state trie (and historical view) reads
        #: through — in-memory by default, disk-backed when the operator
        #: passes an AppendOnlyFileStore / path (``--state-dir``).
        self.db: NodeStore = as_node_store(db)
        if self.db.last_root != EMPTY_TRIE_ROOT:
            # The chain's history (blocks/receipts) is not persisted, so a
            # populated store cannot be replayed into — it can only be
            # reattached read-side.  Refusing keeps store.last_root (the
            # crash-recovery reattachment point) exactly where the previous
            # run committed it.
            if self.db is not db:
                self.db.close()  # we opened/wrapped it; don't leak the handle
            raise ChainError(
                "node store already contains committed state (last root "
                f"{self.db.last_root.hex()[:16]}…); chain replay from a "
                "persistent store is not yet supported — reattach with "
                "StateDB(store, store.last_root)"
            )
        self.state = StateDB(self.db)
        genesis_block = make_genesis_block(genesis, self.state)
        self._blocks: list[Block] = [genesis_block]
        self._blocks_by_hash: dict[bytes, Block] = {genesis_block.hash: genesis_block}
        self._tx_index: dict[bytes, tuple[int, int]] = {}
        self._receipts_by_tx: dict[bytes, Receipt] = {}
        self.mempool: list[Transaction] = []
        self.executor = executor
        self._block_context_factory = block_context_factory

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #

    @property
    def head(self) -> Block:
        return self._blocks[-1]

    @property
    def height(self) -> int:
        return self.head.number

    def get_block_by_number(self, number: int) -> Optional[Block]:
        if 0 <= number < len(self._blocks):
            return self._blocks[number]
        return None

    def get_block_by_hash(self, block_hash: bytes) -> Optional[Block]:
        return self._blocks_by_hash.get(block_hash)

    def get_block_hash(self, number: int) -> Optional[bytes]:
        block = self.get_block_by_number(number)
        return block.hash if block else None

    def get_header(self, number: int) -> Optional[BlockHeader]:
        block = self.get_block_by_number(number)
        return block.header if block else None

    def state_at(self, number: int) -> StateDB:
        """Historical state view at the end of block ``number``."""
        block = self.get_block_by_number(number)
        if block is None:
            raise ChainError(f"no block at height {number}")
        return self.state.at_root(block.header.state_root)

    def find_transaction(self, tx_hash: bytes) -> Optional[tuple[Block, int]]:
        """Locate a mined transaction: (containing block, index)."""
        location = self._tx_index.get(tx_hash)
        if location is None:
            return None
        number, index = location
        return self._blocks[number], index

    def get_receipt(self, tx_hash: bytes) -> Optional[Receipt]:
        return self._receipts_by_tx.get(tx_hash)

    # ------------------------------------------------------------------ #
    # Mempool
    # ------------------------------------------------------------------ #

    def add_transaction(self, tx: Transaction) -> bytes:
        """Validate and queue a transaction; returns its hash."""
        try:
            sender = tx.sender
        except TransactionError as exc:
            raise ChainError(f"unsignable transaction: {exc}") from exc
        if tx.gas_limit > self.config.gas_limit:
            raise ChainError("transaction gas limit exceeds block gas limit")
        if tx.gas_price < 0 or tx.value < 0:
            raise ChainError("negative gas price or value")
        pending_nonces = sum(1 for p in self.mempool if p.sender == sender)
        expected = self.state.nonce_of(sender) + pending_nonces
        if tx.nonce != expected:
            raise ChainError(
                f"nonce gap for {sender.hex()}: tx {tx.nonce}, expected {expected}"
            )
        if tx.hash in self._tx_index or any(p.hash == tx.hash for p in self.mempool):
            raise ChainError("transaction already known")
        self.mempool.append(tx)
        return tx.hash

    # ------------------------------------------------------------------ #
    # Block production
    # ------------------------------------------------------------------ #

    def build_block(self, coinbase: Optional[Address] = None,
                    timestamp: Optional[int] = None,
                    transactions: Optional[list[Transaction]] = None) -> Block:
        """Execute pending (or given) transactions and append a new block."""
        if self.executor is None:
            raise ChainError("no transaction executor configured")
        coinbase = coinbase or Address.zero()
        parent = self.head
        if timestamp is None:
            timestamp = max(parent.header.timestamp + 1, int(_time.time()))
        if transactions is None:
            transactions = self.mempool
            self.mempool = []

        block_ctx = self._make_block_context(parent.number + 1, timestamp, coinbase)
        receipts: list[Receipt] = []
        included: list[Transaction] = []
        cumulative_gas = 0
        for tx in transactions:
            if cumulative_gas + tx.gas_limit > self.config.gas_limit:
                self.mempool.append(tx)  # defer to the next block
                continue
            # Per-tx commit point: snapshot() flushes the state overlay so a
            # failing tx can be unwound by root; one hashing pass covers all
            # of the previous tx's dirty nodes.
            snapshot = self.state.snapshot()
            try:
                result = self.executor.apply(
                    self.state, block_ctx, tx, cumulative_gas
                )
            except Exception:
                self.state.revert(snapshot)  # invalid tx: drop it entirely
                continue
            receipts.append(result.receipt)
            included.append(tx)
            cumulative_gas = result.receipt.cumulative_gas_used

        # Sealing commit point: the last tx's writes are hashed here, and the
        # tx/receipt tries are built batch-wise (one commit each).
        state_root = self.state.commit()
        header = BlockHeader(
            parent_hash=parent.hash,
            state_root=state_root,
            transactions_root=build_transaction_trie(included).root_hash,
            receipts_root=build_receipt_trie(receipts).root_hash,
            number=parent.number + 1,
            timestamp=timestamp,
            gas_used=cumulative_gas,
            gas_limit=self.config.gas_limit,
            proposer=coinbase,
        )
        block = Block(header=header, transactions=tuple(included),
                      receipts=tuple(receipts))
        self._append(block)
        return block

    def _make_block_context(self, number: int, timestamp: int,
                            coinbase: Address) -> "object":
        if self._block_context_factory is not None:
            return self._block_context_factory(number, timestamp, coinbase,
                                               self.get_block_hash)
        # Deferred import keeps repro.chain importable without repro.vm.
        from ..vm.runtime import BlockContext

        return BlockContext(
            number=number, timestamp=timestamp, coinbase=coinbase,
            get_block_hash=self.get_block_hash,
        )

    def _append(self, block: Block) -> None:
        if block.header.parent_hash != self.head.hash:
            raise ChainError("block does not extend the canonical head")
        if block.number != self.head.number + 1:
            raise ChainError("non-consecutive block number")
        block.validate_roots()
        self._blocks.append(block)
        self._blocks_by_hash[block.hash] = block
        for index, tx in enumerate(block.transactions):
            self._tx_index[tx.hash] = (block.number, index)
            if index < len(block.receipts):
                self._receipts_by_tx[tx.hash] = block.receipts[index]

    def __repr__(self) -> str:
        return f"Blockchain(height={self.height}, mempool={len(self.mempool)})"
