"""The blockchain: canonical chain, mempool, block production, history.

This is the devnet substrate standing in for the paper's local Geth network
(§VI-B).  Key behaviours PARP depends on:

* every header commits to state/tx/receipt roots (light-client verification),
* ``get_block_hash`` serves the 256-block window the Fraud Detection Module
  uses to authenticate submitted headers,
* historical state roots stay resolvable (append-only node store), so proofs
  can be generated for any past block.

The executor is injected (dependency inversion) so this package does not
depend on :mod:`repro.vm`; :mod:`repro.node.devnet` wires them together.
"""

from __future__ import annotations

import os
import time as _time
from typing import Callable, Optional, Protocol, Union

from ..crypto.keys import Address
from ..storage.blocklog import BlockLog
from ..storage.compaction import (
    CompactionReport,
    RetentionPolicy,
    RetentionSpec,
    compact_node_store,
)
from ..storage.nodestore import (
    MemoryNodeStore,
    NodeStore,
    PrunedRootError,
    as_node_store,
)
from ..trie.mpt import EMPTY_TRIE_ROOT
from .block import Block, build_receipt_trie, build_transaction_trie
from .genesis import GenesisConfig, make_genesis_block
from .header import BlockHeader
from .receipt import Receipt
from .state import StateDB
from .transaction import Transaction, TransactionError

__all__ = ["Blockchain", "ChainError", "TransactionExecutorProtocol"]


class ChainError(Exception):
    """Raised on invalid blocks or transactions."""


class TransactionExecutorProtocol(Protocol):
    """What the chain needs from an executor (implemented by repro.vm)."""

    def apply(self, state: StateDB, block: "object", tx: Transaction,
              cumulative_gas: int = 0) -> "object":
        ...


class Blockchain:
    """A single-chain (no-fork) blockchain with a simple FIFO mempool.

    The devnet has honest round-robin proposers, so fork choice is out of
    scope — PARP is a serving-layer protocol and assumes chain consensus.
    """

    def __init__(self, genesis: GenesisConfig,
                 executor: Optional[TransactionExecutorProtocol] = None,
                 block_context_factory: Optional[Callable] = None,
                 db: Union[None, dict, NodeStore, str] = None,
                 block_log: Union[None, BlockLog, str, os.PathLike] = None,
                 retention: RetentionSpec = None) -> None:
        self.config = genesis
        #: the node store every state trie (and historical view) reads
        #: through — in-memory by default, disk-backed when the operator
        #: passes an AppendOnlyFileStore / path (``--state-dir``).
        self.db: NodeStore = as_node_store(db, retention=retention)
        #: how much history this chain keeps provable — explicit argument
        #: first, else whatever policy the store was opened with (so
        #: ``Devnet(state_dir=…, retention=…)`` configures both layers in
        #: one place), else archive
        self.retention: RetentionPolicy = (
            RetentionPolicy.parse(retention) if retention is not None
            else getattr(self.db, "retention", RetentionPolicy.archive())
        )
        #: the sibling chain-metadata log (headers/bodies/receipts).  When
        #: present, every sealed block lands in it right after the state
        #: commit, and a populated pair reattaches instead of refusing.
        owns_log = block_log is not None and not isinstance(block_log, BlockLog)
        try:
            self.block_log: Optional[BlockLog] = (
                BlockLog(block_log) if owns_log else block_log
            )
        except Exception:
            if self.db is not db:
                self.db.close()  # we opened/wrapped it; don't leak the handle
            raise
        #: True when this instance resumed from persisted history rather
        #: than sealing a fresh genesis.
        self.reattached = False
        try:
            self._open_chain()
        except Exception:
            # mirror the node-store leak guard: close every handle this
            # constructor opened (and only those) before re-raising
            if self.db is not db:
                self.db.close()
            if owns_log and self.block_log is not None:
                self.block_log.close()
            raise
        self.mempool: list[Transaction] = []
        self.executor = executor
        self._block_context_factory = block_context_factory
        #: callbacks fired once per newly *sealed* block (see
        #: :meth:`on_seal`) — never for genesis or reattached history.
        self._seal_listeners: list[Callable[["Block"], None]] = []
        #: log size after the last compaction — the growth reference for
        #: the automatic trigger (see RetentionPolicy.compact_growth)
        self._compact_baseline = (
            self.db.log_bytes() if hasattr(self.db, "log_bytes") else 0
        )

    def _open_chain(self) -> None:
        """Seal a fresh genesis, or reattach over persisted history."""
        self._blocks: list[Block] = []
        self._blocks_by_hash: dict[bytes, Block] = {}
        self._tx_index: dict[bytes, tuple[int, int]] = {}
        self._receipts_by_tx: dict[bytes, Receipt] = {}
        #: number of ``self._blocks[0]`` — 0 unless pruning dropped history
        self._first_number = 0
        if self.block_log is not None and self.block_log.blocks:
            self._reattach(list(self.block_log.blocks))
            return
        if self.db.last_root != EMPTY_TRIE_ROOT:
            # A populated store with no block history cannot be replayed
            # into — refusing keeps store.last_root (the crash-recovery
            # reattachment point) exactly where the previous run committed
            # it.  Restarting *with* history is the reattach path above.
            raise ChainError(
                "node store already contains committed state (last root "
                f"{self.db.last_root.hex()[:16]}…) but no block log was "
                "provided; chain replay from a bare store is not supported "
                "— reopen with the sibling blocks.log (--state-dir), or "
                "reattach read-side with StateDB(store, store.last_root)"
            )
        self.state = StateDB(self.db)
        genesis_block = make_genesis_block(self.config, self.state)
        self._genesis_hash = genesis_block.hash
        if self.block_log is not None:
            # Persist genesis like any sealed block — state first (one
            # durable batch), then the log record — so the invariant "every
            # logged block's state root is resolvable" holds from block 0.
            self.state.commit()
            self.block_log.append(genesis_block)
        self._index_block(genesis_block)

    def _reattach(self, blocks: list[Block]) -> None:
        """Resume over recovered history: rebuild indexes, reopen the head.

        The recovered chain must be *ours* (its genesis must hash-match
        what this config would seal) and its head state must be resolvable
        in the node store.  The write path fsyncs the state batch before
        the block record, so the store can never durably trail the log —
        but an operator restoring ``nodes.log`` from an older copy can
        produce exactly that, so the unresolvable tail is rewound instead
        of served as unprovable history.
        """
        expected = make_genesis_block(self.config, StateDB(MemoryNodeStore()))
        # a pruned log no longer holds the genesis record, but its anchor
        # carries the genesis hash forward — chain identity stays checkable
        logged_genesis = self.block_log.genesis_hash
        if logged_genesis != expected.hash:
            raise ChainError(
                f"persisted chain starts at "
                f"{(logged_genesis or b'').hex()[:16]}… but this genesis "
                f"config seals {expected.hash.hex()[:16]}…; the state dir "
                "belongs to a different chain"
            )
        self._genesis_hash = expected.hash
        dropped = 0
        while blocks and not self._root_resolvable(blocks[-1].header.state_root):
            blocks.pop()
            dropped += 1
        if not blocks:
            raise ChainError(
                "node store cannot resolve the state root of any logged "
                "block; nodes.log and blocks.log are from different runs"
            )
        if dropped:
            self.block_log.rewind(dropped)
        self._first_number = blocks[0].number
        self.state = StateDB(self.db, blocks[-1].header.state_root)
        for block in blocks:
            self._index_block(block)
        self.reattached = True

    def _root_resolvable(self, root: bytes) -> bool:
        return root == EMPTY_TRIE_ROOT or self.db.get(root) is not None

    def _index_block(self, block: Block) -> None:
        self._blocks.append(block)
        self._blocks_by_hash[block.hash] = block
        for index, tx in enumerate(block.transactions):
            self._tx_index[tx.hash] = (block.number, index)
            if index < len(block.receipts):
                self._receipts_by_tx[tx.hash] = block.receipts[index]

    def close(self) -> None:
        """Release the persistence handles (node store + block log)."""
        self.db.close()
        if self.block_log is not None:
            self.block_log.close()

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #

    @property
    def head(self) -> Block:
        return self._blocks[-1]

    @property
    def height(self) -> int:
        return self.head.number

    @property
    def first_retained_number(self) -> int:
        """Lowest height this node still holds (0 unless pruned)."""
        return self._first_number

    def get_block_by_number(self, number: int) -> Optional[Block]:
        index = number - self._first_number
        if 0 <= index < len(self._blocks):
            return self._blocks[index]
        return None

    def get_block_by_hash(self, block_hash: bytes) -> Optional[Block]:
        return self._blocks_by_hash.get(block_hash)

    def get_block_hash(self, number: int) -> Optional[bytes]:
        block = self.get_block_by_number(number)
        return block.hash if block else None

    def get_header(self, number: int) -> Optional[BlockHeader]:
        block = self.get_block_by_number(number)
        return block.header if block else None

    def state_at(self, number: int) -> StateDB:
        """Historical state view at the end of block ``number``.

        Heights below the retention window raise the typed
        :class:`PrunedRootError` — the node *had* that history and chose
        to drop it, which callers (and billing light clients) treat very
        differently from a height that never existed.
        """
        block = self.get_block_by_number(number)
        if block is None:
            if 0 <= number < self._first_number:
                raise PrunedRootError(
                    f"block {number} is below the retention window (this "
                    f"node serves heights {self._first_number}"
                    f"..{self.height})"
                )
            raise ChainError(f"no block at height {number}")
        return self.state.at_root(block.header.state_root)

    def find_transaction(self, tx_hash: bytes) -> Optional[tuple[Block, int]]:
        """Locate a mined transaction: (containing block, index)."""
        location = self._tx_index.get(tx_hash)
        if location is None:
            return None
        number, index = location
        return self.get_block_by_number(number), index

    def get_receipt(self, tx_hash: bytes) -> Optional[Receipt]:
        return self._receipts_by_tx.get(tx_hash)

    # ------------------------------------------------------------------ #
    # Mempool
    # ------------------------------------------------------------------ #

    def add_transaction(self, tx: Transaction) -> bytes:
        """Validate and queue a transaction; returns its hash."""
        try:
            sender = tx.sender
        except TransactionError as exc:
            raise ChainError(f"unsignable transaction: {exc}") from exc
        if tx.gas_limit > self.config.gas_limit:
            raise ChainError("transaction gas limit exceeds block gas limit")
        if tx.gas_price < 0 or tx.value < 0:
            raise ChainError("negative gas price or value")
        pending_nonces = sum(1 for p in self.mempool if p.sender == sender)
        expected = self.state.nonce_of(sender) + pending_nonces
        if tx.nonce != expected:
            raise ChainError(
                f"nonce gap for {sender.hex()}: tx {tx.nonce}, expected {expected}"
            )
        if tx.hash in self._tx_index or any(p.hash == tx.hash for p in self.mempool):
            raise ChainError("transaction already known")
        self.mempool.append(tx)
        return tx.hash

    # ------------------------------------------------------------------ #
    # Block production
    # ------------------------------------------------------------------ #

    def build_block(self, coinbase: Optional[Address] = None,
                    timestamp: Optional[int] = None,
                    transactions: Optional[list[Transaction]] = None) -> Block:
        """Execute pending (or given) transactions and append a new block.

        Deferral semantics: a transaction that does not fit the block gas
        limit is deferred, and so is every *later transaction from the same
        sender* — executing those against the gap would fail the nonce
        check and silently drop them.  Mempool-sourced deferrals return to
        ``self.mempool``; when the caller passes an explicit
        ``transactions`` list, the deferred ones are left in that list (in
        order) for the caller to resubmit, and the shared mempool is not
        touched.
        """
        if self.executor is None:
            raise ChainError("no transaction executor configured")
        coinbase = coinbase or Address.zero()
        parent = self.head
        if timestamp is None:
            timestamp = max(parent.header.timestamp + 1, int(_time.time()))
        use_mempool = transactions is None
        if use_mempool:
            candidates = self.mempool
            self.mempool = []
        else:
            candidates = list(transactions)

        block_ctx = self._make_block_context(parent.number + 1, timestamp, coinbase)
        receipts: list[Receipt] = []
        included: list[Transaction] = []
        deferred: list[Transaction] = []
        deferred_senders: set[Address] = set()
        cumulative_gas = 0
        for tx in candidates:
            try:
                sender = tx.sender
            except TransactionError:
                continue  # unsignable: cannot ever execute, drop it
            if sender in deferred_senders:
                # an earlier tx from this sender was deferred: executing
                # this one would hit the nonce gap and be dropped, so it
                # rides along to the next block instead
                deferred.append(tx)
                continue
            if cumulative_gas + tx.gas_limit > self.config.gas_limit:
                deferred.append(tx)  # defer to the next block
                deferred_senders.add(sender)
                continue
            # Per-tx commit point: snapshot() flushes the state overlay so a
            # failing tx can be unwound by root; one hashing pass covers all
            # of the previous tx's dirty nodes.
            snapshot = self.state.snapshot()
            try:
                result = self.executor.apply(
                    self.state, block_ctx, tx, cumulative_gas
                )
            except Exception:
                self.state.revert(snapshot)  # invalid tx: drop it entirely
                continue
            receipts.append(result.receipt)
            included.append(tx)
            cumulative_gas = result.receipt.cumulative_gas_used
        if use_mempool:
            self.mempool.extend(deferred)
        else:
            transactions[:] = deferred

        # Sealing commit point: the last tx's writes are hashed here, and the
        # tx/receipt tries are built batch-wise (one commit each).
        state_root = self.state.commit()
        header = BlockHeader(
            parent_hash=parent.hash,
            state_root=state_root,
            transactions_root=build_transaction_trie(included).root_hash,
            receipts_root=build_receipt_trie(receipts).root_hash,
            number=parent.number + 1,
            timestamp=timestamp,
            gas_used=cumulative_gas,
            gas_limit=self.config.gas_limit,
            proposer=coinbase,
        )
        block = Block(header=header, transactions=tuple(included),
                      receipts=tuple(receipts))
        self._append(block)
        return block

    def _make_block_context(self, number: int, timestamp: int,
                            coinbase: Address) -> "object":
        if self._block_context_factory is not None:
            return self._block_context_factory(number, timestamp, coinbase,
                                               self.get_block_hash)
        # Deferred import keeps repro.chain importable without repro.vm.
        from ..vm.runtime import BlockContext

        return BlockContext(
            number=number, timestamp=timestamp, coinbase=coinbase,
            get_block_hash=self.get_block_hash,
        )

    def _append(self, block: Block) -> None:
        if block.header.parent_hash != self.head.hash:
            raise ChainError("block does not extend the canonical head")
        if block.number != self.head.number + 1:
            raise ChainError("non-consecutive block number")
        block.validate_roots()
        if self.block_log is not None:
            # The sealing state commit already fsynced (build_block), so
            # logging the block here keeps its state root resolvable on
            # every recovery path; a failed append leaves the in-memory
            # chain un-extended rather than ahead of the durable history.
            self.block_log.append(block)
        self._index_block(block)
        self._maybe_autocompact()
        for listener in list(self._seal_listeners):
            listener(block)

    def on_seal(self, listener: Callable[["Block"], None]) -> Callable:
        """Subscribe to newly sealed blocks (the gossip announce hook).

        Listeners fire after the block is durably logged and indexed —
        and only for *new* seals: genesis and the reattach path replay
        history without announcing it.  Returns the listener for symmetry
        with :meth:`remove_seal_listener`.
        """
        self._seal_listeners.append(listener)
        return listener

    def remove_seal_listener(self, listener: Callable) -> None:
        try:
            self._seal_listeners.remove(listener)
        except ValueError:
            pass

    # ------------------------------------------------------------------ #
    # Compaction / pruning
    # ------------------------------------------------------------------ #

    def _maybe_autocompact(self) -> None:
        """Compact after sealing once the log outgrows the policy's trigger."""
        policy = self.retention
        if not policy.prunes or not hasattr(self.db, "log_bytes"):
            return
        size = self.db.log_bytes()
        if size < policy.min_compact_bytes:
            return
        if size < policy.compact_growth * max(1, self._compact_baseline):
            return
        self.compact()

    def compact(self, retention: RetentionSpec = None,
                *, force: bool = False) -> Optional[CompactionReport]:
        """Prune history past the retention window and compact the store.

        Ordering is the crash-safety contract: ``blocks.log`` is pruned
        *first*, then ``nodes.log`` is compacted — a crash between the two
        steps leaves the node store a superset of what the block log
        references (reattach works, the next compaction reclaims the
        rest), never a block log demanding a pruned root.  Both rewrites
        are individually atomic (write-beside + rename).

        Returns the store's :class:`CompactionReport`, or None when the
        backing store has no log to compact (memory backend) and ``force``
        is False.  With an archive policy the pass keeps every block's
        root resolvable — it only rewrites the log (reclaiming nothing in
        the normal case) — so archive chains skip it unless forced.
        """
        policy = (RetentionPolicy.parse(retention) if retention is not None
                  else self.retention)
        if not hasattr(self.db, "compact"):
            if force:
                raise ChainError(
                    "only disk-backed node stores can compact "
                    f"(this chain runs on {type(self.db).__name__})")
            return None
        if not policy.prunes and not force:
            return None
        keep_from = self._first_number
        if policy.prunes:
            keep_from = max(self._first_number, self.height - policy.k + 1)
        retained_blocks = self._blocks[keep_from - self._first_number:]
        roots: list[bytes] = []
        seen_roots: set[bytes] = set()
        for block in retained_blocks:
            root = block.header.state_root
            if root not in seen_roots:
                seen_roots.add(root)
                roots.append(root)
        if keep_from > self._first_number:
            if self.block_log is not None:
                self.block_log.prune_to(keep_from)
            dropped = self._blocks[:keep_from - self._first_number]
            self._blocks = retained_blocks
            for block in dropped:
                self._blocks_by_hash.pop(block.hash, None)
                for tx in block.transactions:
                    self._tx_index.pop(tx.hash, None)
                    self._receipts_by_tx.pop(tx.hash, None)
            self._first_number = keep_from
        report = compact_node_store(self.db, retain_roots=roots)
        if hasattr(self.db, "log_bytes"):
            self._compact_baseline = self.db.log_bytes()
        return report

    def __repr__(self) -> str:
        return f"Blockchain(height={self.height}, mempool={len(self.mempool)})"
