"""Signed transactions (legacy Ethereum format, pre-typed-envelope).

A transaction is ``(nonce, gas_price, gas_limit, to, value, data)`` plus a
65-byte recoverable signature.  The write workload of the paper (§VI-A)
consists of exactly these objects, and Figure 6's Merkle proofs are proofs of
a transaction's inclusion in a block's transaction trie, keyed by
``rlp(index)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from ..crypto import Signature, keccak256, recover_address
from ..crypto.keys import Address, PrivateKey
from ..rlp import codec as rlp

__all__ = ["Transaction", "UnsignedTransaction", "TransactionError"]


class TransactionError(ValueError):
    """Raised for malformed or incorrectly signed transactions."""


@dataclass(frozen=True)
class UnsignedTransaction:
    """Transaction payload before signing."""

    nonce: int
    gas_price: int
    gas_limit: int
    to: Address
    value: int
    data: bytes = b""

    def _payload_items(self) -> list[rlp.Item]:
        return [
            rlp.encode_int(self.nonce),
            rlp.encode_int(self.gas_price),
            rlp.encode_int(self.gas_limit),
            self.to.to_bytes(),
            rlp.encode_int(self.value),
            self.data,
        ]

    @property
    def signing_hash(self) -> bytes:
        """keccak256 of the RLP payload; what the sender actually signs."""
        return keccak256(rlp.encode(self._payload_items()))

    def sign(self, key: PrivateKey) -> "Transaction":
        signature = key.sign(self.signing_hash)
        return Transaction(
            nonce=self.nonce,
            gas_price=self.gas_price,
            gas_limit=self.gas_limit,
            to=self.to,
            value=self.value,
            data=self.data,
            signature=signature,
        )


@dataclass(frozen=True)
class Transaction:
    """A fully signed transaction."""

    nonce: int
    gas_price: int
    gas_limit: int
    to: Address
    value: int
    data: bytes
    signature: Signature

    @property
    def unsigned(self) -> UnsignedTransaction:
        return UnsignedTransaction(
            nonce=self.nonce,
            gas_price=self.gas_price,
            gas_limit=self.gas_limit,
            to=self.to,
            value=self.value,
            data=self.data,
        )

    @cached_property
    def sender(self) -> Address:
        """Recover the sender address from the signature (cached)."""
        try:
            return recover_address(self.unsigned.signing_hash, self.signature)
        except Exception as exc:
            raise TransactionError(f"cannot recover transaction sender: {exc}") from exc

    @cached_property
    def hash(self) -> bytes:
        """keccak256 of the full signed encoding — the canonical tx hash."""
        return keccak256(self.encode())

    def encode(self) -> bytes:
        """RLP encoding (payload fields + v, r, s), as stored in the tx trie."""
        sig = self.signature
        items = self.unsigned._payload_items() + [
            rlp.encode_int(sig.v),
            rlp.encode_int(sig.r),
            rlp.encode_int(sig.s),
        ]
        return rlp.encode(items)

    @classmethod
    def decode(cls, raw: bytes) -> "Transaction":
        try:
            item = rlp.decode(raw)
        except rlp.RLPError as exc:
            raise TransactionError(f"undecodable transaction: {exc}") from exc
        if not isinstance(item, list) or len(item) != 9:
            raise TransactionError("transaction must be a 9-item RLP list")
        (nonce_b, gas_price_b, gas_limit_b, to_b, value_b, data,
         v_b, r_b, s_b) = item
        if len(to_b) != 20:
            raise TransactionError("transaction 'to' must be a 20-byte address")
        signature = Signature(
            r=rlp.decode_int(r_b), s=rlp.decode_int(s_b), v=rlp.decode_int(v_b),
        )
        tx = cls(
            nonce=rlp.decode_int(nonce_b),
            gas_price=rlp.decode_int(gas_price_b),
            gas_limit=rlp.decode_int(gas_limit_b),
            to=Address(to_b),
            value=rlp.decode_int(value_b),
            data=data,
            signature=signature,
        )
        return tx

    def intrinsic_gas(self) -> int:
        """Base cost charged before any execution (21000 + calldata bytes)."""
        from ..vm.gas import calldata_gas, TX_BASE_GAS

        return TX_BASE_GAS + calldata_gas(self.data)

    def __repr__(self) -> str:
        return (
            f"Transaction(hash={self.hash.hex()[:10]}…, nonce={self.nonce}, "
            f"to={self.to.hex()}, value={self.value})"
        )
