"""Blocks: a header plus an ordered transaction list, with trie helpers.

The transaction and receipt tries are built exactly as in Ethereum: keys are
``rlp(index)`` and values are the canonical encodings.  These tries back the
inclusion proofs PARP attaches to write-workload responses (Fig. 6 of the
paper studies precisely how their proof sizes vary with the transaction
index and block size).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from ..rlp import codec as rlp
from ..trie.mpt import MerklePatriciaTrie
from .header import BlockHeader
from .receipt import Receipt
from .transaction import Transaction

__all__ = ["Block", "build_transaction_trie", "build_receipt_trie", "index_key"]


def index_key(index: int) -> bytes:
    """Trie key for position ``index``: the RLP of the integer."""
    return rlp.encode(rlp.encode_int(index))


def build_transaction_trie(transactions: list[Transaction]) -> MerklePatriciaTrie:
    """The per-block transaction trie: rlp(i) -> tx.encode().

    Built as one batch: all N puts land in the trie's write overlay and the
    root is hashed in a single commit pass (O(distinct nodes), not O(N·depth))
    when the caller reads ``root_hash``.
    """
    trie = MerklePatriciaTrie()
    trie.update({index_key(index): tx.encode()
                 for index, tx in enumerate(transactions)})
    return trie


def build_receipt_trie(receipts: list[Receipt]) -> MerklePatriciaTrie:
    """The per-block receipt trie: rlp(i) -> receipt.encode()."""
    trie = MerklePatriciaTrie()
    trie.update({index_key(index): receipt.encode()
                 for index, receipt in enumerate(receipts)})
    return trie


@dataclass(frozen=True)
class Block:
    """An executed block: header committing to body and post-state."""

    header: BlockHeader
    transactions: tuple[Transaction, ...]
    receipts: tuple[Receipt, ...] = ()

    @cached_property
    def hash(self) -> bytes:
        return self.header.hash

    @property
    def number(self) -> int:
        return self.header.number

    @cached_property
    def transaction_trie(self) -> MerklePatriciaTrie:
        """Rebuilt on demand (deterministic from the body)."""
        return build_transaction_trie(list(self.transactions))

    @cached_property
    def receipt_trie(self) -> MerklePatriciaTrie:
        return build_receipt_trie(list(self.receipts))

    def validate_roots(self) -> None:
        """Check that the header's body commitments match the actual body."""
        tx_root = self.transaction_trie.root_hash
        if tx_root != self.header.transactions_root:
            raise ValueError(
                f"transactions root mismatch: header {self.header.transactions_root.hex()} "
                f"!= body {tx_root.hex()}"
            )
        receipt_root = self.receipt_trie.root_hash
        if receipt_root != self.header.receipts_root:
            raise ValueError(
                f"receipts root mismatch: header {self.header.receipts_root.hex()} "
                f"!= body {receipt_root.hex()}"
            )

    def transaction_index(self, tx_hash: bytes) -> int | None:
        for index, tx in enumerate(self.transactions):
            if tx.hash == tx_hash:
                return index
        return None

    def __repr__(self) -> str:
        return (
            f"Block(number={self.number}, txs={len(self.transactions)}, "
            f"hash={self.hash.hex()[:10]}…)"
        )
