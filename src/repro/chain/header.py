"""Block headers — the light client's root of trust.

A PARP light client downloads *only* headers (paper §III-B): each header
carries the state, transaction, and receipt trie roots against which every
RPC response is verified.  The header hash is ``keccak256(rlp(header))``;
the on-chain Fraud Detection Module re-derives it from submitted header
fields and checks it against the chain's 256-block hash window (§VI,
"Ethereum's built-in block hash verification").
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from ..crypto import keccak256
from ..crypto.keys import Address
from ..rlp import codec as rlp

__all__ = ["BlockHeader"]


@dataclass(frozen=True)
class BlockHeader:
    """Simplified Ethereum-style header (consensus fields we don't model are
    dropped; all fields relevant to PARP verification are present)."""

    parent_hash: bytes
    state_root: bytes
    transactions_root: bytes
    receipts_root: bytes
    number: int
    timestamp: int
    gas_used: int
    gas_limit: int
    proposer: Address
    extra_data: bytes = b""

    def __post_init__(self) -> None:
        for name in ("parent_hash", "state_root", "transactions_root", "receipts_root"):
            value = getattr(self, name)
            if not isinstance(value, bytes) or len(value) != 32:
                raise ValueError(f"header field {name} must be 32 bytes")
        if self.number < 0 or self.timestamp < 0:
            raise ValueError("header number/timestamp must be non-negative")

    def _rlp_items(self) -> list[rlp.Item]:
        return [
            self.parent_hash,
            self.state_root,
            self.transactions_root,
            self.receipts_root,
            rlp.encode_int(self.number),
            rlp.encode_int(self.timestamp),
            rlp.encode_int(self.gas_used),
            rlp.encode_int(self.gas_limit),
            self.proposer.to_bytes(),
            self.extra_data,
        ]

    def encode(self) -> bytes:
        return rlp.encode(self._rlp_items())

    @classmethod
    def decode(cls, raw: bytes) -> "BlockHeader":
        item = rlp.decode(raw)
        if not isinstance(item, list) or len(item) != 10:
            raise rlp.RLPError("header must be a 10-item RLP list")
        (parent, state_root, tx_root, receipt_root, number_b, timestamp_b,
         gas_used_b, gas_limit_b, proposer_b, extra) = item
        return cls(
            parent_hash=parent,
            state_root=state_root,
            transactions_root=tx_root,
            receipts_root=receipt_root,
            number=rlp.decode_int(number_b),
            timestamp=rlp.decode_int(timestamp_b),
            gas_used=rlp.decode_int(gas_used_b),
            gas_limit=rlp.decode_int(gas_limit_b),
            proposer=Address(proposer_b),
            extra_data=extra,
        )

    @cached_property
    def hash(self) -> bytes:
        """The canonical block hash: keccak256 of the RLP encoding."""
        return keccak256(self.encode())

    def __repr__(self) -> str:
        return f"BlockHeader(number={self.number}, hash={self.hash.hex()[:10]}…)"
