"""Transaction receipts and event logs.

Receipts are stored in the per-block receipt trie (keyed by ``rlp(index)``),
whose root is committed in the block header — so a PARP light client can
verify ``eth_getTransactionReceipt`` responses with a Merkle proof, exactly
like transactions.  Events emitted by the on-chain PARP modules (channel
opened/closed, fraud detected, deposits slashed) surface here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..crypto.keys import Address
from ..rlp import codec as rlp

__all__ = ["LogEntry", "Receipt"]


@dataclass(frozen=True)
class LogEntry:
    """An event log: emitting contract, indexed topics, opaque data."""

    address: Address
    topics: tuple[bytes, ...]
    data: bytes

    def to_rlp(self) -> rlp.Item:
        return [self.address.to_bytes(), list(self.topics), self.data]

    @classmethod
    def from_rlp(cls, item: rlp.Item) -> "LogEntry":
        if not isinstance(item, list) or len(item) != 3:
            raise rlp.RLPError("log entry must be a 3-item list")
        address_b, topics, data = item
        if not isinstance(topics, list):
            raise rlp.RLPError("log topics must be a list")
        for topic in topics:
            if not isinstance(topic, bytes) or len(topic) != 32:
                raise rlp.RLPError("log topics must be 32-byte strings")
        return cls(Address(address_b), tuple(topics), data)


@dataclass(frozen=True)
class Receipt:
    """Execution outcome of one transaction."""

    status: int  # 1 success, 0 reverted
    cumulative_gas_used: int
    logs: tuple[LogEntry, ...] = field(default_factory=tuple)
    gas_used: int = 0  # convenience (not part of the canonical encoding)

    def encode(self) -> bytes:
        """Canonical RLP encoding as stored in the receipt trie."""
        return rlp.encode([
            rlp.encode_int(self.status),
            rlp.encode_int(self.cumulative_gas_used),
            [log.to_rlp() for log in self.logs],
        ])

    @classmethod
    def decode(cls, raw: bytes) -> "Receipt":
        item = rlp.decode(raw)
        if not isinstance(item, list) or len(item) != 3:
            raise rlp.RLPError("receipt must be a 3-item RLP list")
        status_b, gas_b, logs_item = item
        if not isinstance(logs_item, list):
            raise rlp.RLPError("receipt logs must be a list")
        return cls(
            status=rlp.decode_int(status_b),
            cumulative_gas_used=rlp.decode_int(gas_b),
            logs=tuple(LogEntry.from_rlp(entry) for entry in logs_item),
        )

    @property
    def succeeded(self) -> bool:
        return self.status == 1
