"""Account records stored in the state trie.

An account is the 4-tuple ``(nonce, balance, storage_root, code_hash)``
RLP-encoded under ``keccak256(address)`` in the state trie — the exact layout
a PARP light client verifies when it checks an ``eth_getBalance`` response
against the header's state root.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..crypto.keccak import KECCAK_EMPTY
from ..rlp import codec as rlp
from ..trie.mpt import EMPTY_TRIE_ROOT

__all__ = ["Account"]


@dataclass(frozen=True)
class Account:
    """State-trie account record (immutable value object)."""

    nonce: int = 0
    balance: int = 0
    storage_root: bytes = EMPTY_TRIE_ROOT
    code_hash: bytes = KECCAK_EMPTY

    def encode(self) -> bytes:
        """RLP encoding as stored in the state trie."""
        return rlp.encode([
            rlp.encode_int(self.nonce),
            rlp.encode_int(self.balance),
            self.storage_root,
            self.code_hash,
        ])

    @classmethod
    def decode(cls, data: bytes) -> "Account":
        item = rlp.decode(data)
        if not isinstance(item, list) or len(item) != 4:
            raise rlp.RLPError("account record must be a 4-item list")
        nonce_b, balance_b, storage_root, code_hash = item
        if len(storage_root) != 32 or len(code_hash) != 32:
            raise rlp.RLPError("account roots must be 32 bytes")
        return cls(
            nonce=rlp.decode_int(nonce_b),
            balance=rlp.decode_int(balance_b),
            storage_root=storage_root,
            code_hash=code_hash,
        )

    @property
    def is_empty(self) -> bool:
        """EIP-161 emptiness: zero nonce/balance and no code."""
        return (
            self.nonce == 0
            and self.balance == 0
            and self.code_hash == KECCAK_EMPTY
            and self.storage_root == EMPTY_TRIE_ROOT
        )

    def with_balance(self, balance: int) -> "Account":
        if balance < 0:
            raise ValueError("account balance cannot go negative")
        return replace(self, balance=balance)

    def with_nonce(self, nonce: int) -> "Account":
        return replace(self, nonce=nonce)

    def with_storage_root(self, storage_root: bytes) -> "Account":
        return replace(self, storage_root=storage_root)
