"""Base JSON-RPC layer: the permissionless, unaccountable serving baseline."""

from .api import EthereumAPI
from .client import RpcClient
from .jsonrpc import (
    JsonRpcError,
    RpcRequest,
    RpcResponse,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
    from_hex_data,
    from_quantity,
    to_hex_data,
    to_quantity,
)
from .server import RpcServer

__all__ = [
    "EthereumAPI",
    "RpcClient",
    "RpcServer",
    "JsonRpcError",
    "RpcRequest",
    "RpcResponse",
    "encode_request",
    "decode_request",
    "encode_response",
    "decode_response",
    "to_quantity",
    "from_quantity",
    "to_hex_data",
    "from_hex_data",
]
