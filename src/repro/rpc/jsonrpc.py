"""JSON-RPC 2.0 codec — the base serving protocol PARP wraps.

Table II measures PARP's overhead *relative to standard Ethereum JSON-RPC
calls* (a 118-byte balance query, a 422-byte raw-transaction submission), so
the baseline has to exist: this module implements the JSON-RPC 2.0 message
layer (requests, responses, error objects, batches) and the hex-quantity
conventions of the Ethereum wire format.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Optional, Union

__all__ = [
    "JsonRpcError",
    "RpcRequest",
    "RpcResponse",
    "encode_request",
    "decode_request",
    "encode_response",
    "decode_response",
    "to_quantity",
    "from_quantity",
    "to_hex_data",
    "from_hex_data",
    "PARSE_ERROR",
    "INVALID_REQUEST",
    "METHOD_NOT_FOUND",
    "INVALID_PARAMS",
    "INTERNAL_ERROR",
    "SERVER_ERROR",
]

# Standard JSON-RPC 2.0 error codes.
PARSE_ERROR = -32700
INVALID_REQUEST = -32600
METHOD_NOT_FOUND = -32601
INVALID_PARAMS = -32602
INTERNAL_ERROR = -32603
SERVER_ERROR = -32000


class JsonRpcError(Exception):
    """An error that maps to a JSON-RPC error object."""

    def __init__(self, code: int, message: str,
                 data: Optional[Any] = None) -> None:
        super().__init__(message)
        self.code = code
        self.message = message
        self.data = data

    def to_object(self) -> dict:
        obj: dict[str, Any] = {"code": self.code, "message": self.message}
        if self.data is not None:
            obj["data"] = self.data
        return obj


@dataclass(frozen=True)
class RpcRequest:
    """A JSON-RPC 2.0 request."""

    method: str
    params: tuple = ()
    id: Union[int, str, None] = 1

    def to_object(self) -> dict:
        return {
            "jsonrpc": "2.0",
            "id": self.id,
            "method": self.method,
            "params": list(self.params),
        }


@dataclass(frozen=True)
class RpcResponse:
    """A JSON-RPC 2.0 response (exactly one of result/error is set)."""

    id: Union[int, str, None]
    result: Any = None
    error: Optional[dict] = None

    @property
    def is_error(self) -> bool:
        return self.error is not None

    def to_object(self) -> dict:
        obj: dict[str, Any] = {"jsonrpc": "2.0", "id": self.id}
        if self.error is not None:
            obj["error"] = self.error
        else:
            obj["result"] = self.result
        return obj

    def raise_for_error(self) -> Any:
        if self.error is not None:
            raise JsonRpcError(
                self.error.get("code", SERVER_ERROR),
                self.error.get("message", "unknown error"),
                self.error.get("data"),
            )
        return self.result


def encode_request(request: RpcRequest) -> bytes:
    return json.dumps(request.to_object(), separators=(",", ":")).encode("utf-8")


def decode_request(raw: bytes) -> RpcRequest:
    try:
        obj = json.loads(raw)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise JsonRpcError(PARSE_ERROR, f"parse error: {exc}") from exc
    if not isinstance(obj, dict):
        raise JsonRpcError(INVALID_REQUEST, "request must be an object")
    if obj.get("jsonrpc") != "2.0":
        raise JsonRpcError(INVALID_REQUEST, "missing jsonrpc version")
    method = obj.get("method")
    if not isinstance(method, str):
        raise JsonRpcError(INVALID_REQUEST, "method must be a string")
    params = obj.get("params", [])
    if not isinstance(params, list):
        raise JsonRpcError(INVALID_REQUEST, "params must be an array")
    return RpcRequest(method=method, params=tuple(params), id=obj.get("id"))


def encode_response(response: RpcResponse) -> bytes:
    return json.dumps(response.to_object(), separators=(",", ":")).encode("utf-8")


def decode_response(raw: bytes) -> RpcResponse:
    try:
        obj = json.loads(raw)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise JsonRpcError(PARSE_ERROR, f"parse error: {exc}") from exc
    if not isinstance(obj, dict):
        raise JsonRpcError(INVALID_REQUEST, "response must be an object")
    return RpcResponse(
        id=obj.get("id"), result=obj.get("result"), error=obj.get("error"),
    )


# --------------------------------------------------------------------------- #
# Ethereum hex conventions
# --------------------------------------------------------------------------- #

def to_quantity(value: int) -> str:
    """Ethereum QUANTITY encoding: minimal hex with 0x prefix."""
    if value < 0:
        raise ValueError("quantities are non-negative")
    return hex(value)


def from_quantity(text: str) -> int:
    if not isinstance(text, str) or not text.startswith("0x"):
        raise JsonRpcError(INVALID_PARAMS, f"not a hex quantity: {text!r}")
    try:
        return int(text, 16)
    except ValueError as exc:
        raise JsonRpcError(INVALID_PARAMS, f"bad hex quantity: {text!r}") from exc


def to_hex_data(data: bytes) -> str:
    """Ethereum DATA encoding: even-length hex with 0x prefix."""
    return "0x" + data.hex()


def from_hex_data(text: str) -> bytes:
    if not isinstance(text, str) or not text.startswith("0x"):
        raise JsonRpcError(INVALID_PARAMS, f"not hex data: {text!r}")
    try:
        return bytes.fromhex(text[2:])
    except ValueError as exc:
        raise JsonRpcError(INVALID_PARAMS, f"bad hex data: {text!r}") from exc
