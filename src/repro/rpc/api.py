"""The ``eth_*`` API surface a plain (non-PARP) full node exposes.

This is the permissionless-but-unaccountable baseline of the paper's §II-D:
anyone may call it, nothing is signed, nothing is paid, nothing is provable.
PARP wraps exactly these calls; the latency and size benchmarks compare
against this implementation.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..chain.chain import ChainError
from ..crypto.keys import Address
from ..node.fullnode import FullNode
from ..rlp import codec as rlp
from .jsonrpc import (
    INVALID_PARAMS,
    JsonRpcError,
    SERVER_ERROR,
    from_hex_data,
    from_quantity,
    to_hex_data,
    to_quantity,
)

__all__ = ["EthereumAPI"]


class EthereumAPI:
    """Method handlers over a full node; one instance per served node."""

    def __init__(self, node: FullNode) -> None:
        self.node = node
        self._methods: dict[str, Callable[..., Any]] = {
            "eth_blockNumber": self.block_number,
            "eth_chainId": self.chain_id,
            "eth_getBalance": self.get_balance,
            "eth_getTransactionCount": self.get_transaction_count,
            "eth_getStorageAt": self.get_storage_at,
            "eth_getBlockByNumber": self.get_block_by_number,
            "eth_getTransactionByHash": self.get_transaction_by_hash,
            "eth_getTransactionByBlockNumberAndIndex": self.get_transaction_by_index,
            "eth_getTransactionReceipt": self.get_transaction_receipt,
            "eth_sendRawTransaction": self.send_raw_transaction,
            "eth_getProof": self.get_proof,
            "eth_gasPrice": self.gas_price,
        }

    def methods(self) -> list[str]:
        return sorted(self._methods)

    def dispatch(self, method: str, params: tuple) -> Any:
        handler = self._methods.get(method)
        if handler is None:
            raise JsonRpcError(-32601, f"the method {method} does not exist")
        try:
            return handler(*params)
        except JsonRpcError:
            raise
        except TypeError as exc:
            raise JsonRpcError(INVALID_PARAMS, str(exc)) from exc
        except ChainError as exc:
            raise JsonRpcError(SERVER_ERROR, str(exc)) from exc

    # ------------------------------------------------------------------ #
    # Handlers
    # ------------------------------------------------------------------ #

    def block_number(self) -> str:
        return to_quantity(self.node.head_number())

    def chain_id(self) -> str:
        return to_quantity(self.node.chain_id())

    def gas_price(self) -> str:
        return to_quantity(12 * 10 ** 9)

    def _state_at_tag(self, tag: str):
        if tag in ("latest", "safe", "finalized", None):
            return self.node.state_at(self.node.head_number())
        if tag == "earliest":
            return self.node.state_at(0)
        return self.node.state_at(from_quantity(tag))

    def get_balance(self, address_hex: str, tag: str = "latest") -> str:
        state = self._state_at_tag(tag)
        return to_quantity(state.balance_of(_address(address_hex)))

    def get_transaction_count(self, address_hex: str, tag: str = "latest") -> str:
        state = self._state_at_tag(tag)
        return to_quantity(state.nonce_of(_address(address_hex)))

    def get_storage_at(self, address_hex: str, slot_hex: str,
                       tag: str = "latest") -> str:
        state = self._state_at_tag(tag)
        slot = from_hex_data(slot_hex)
        if len(slot) != 32:
            slot = slot.rjust(32, b"\x00")
        value = state.get_storage(_address(address_hex), slot)
        return to_hex_data(value.rjust(32, b"\x00"))

    def get_block_by_number(self, tag: str, full: bool = False) -> Optional[dict]:
        if tag == "latest":
            number = self.node.head_number()
        else:
            number = from_quantity(tag)
        block = self.node.get_block(number)
        if block is None:
            return None
        header = block.header
        body: dict[str, Any] = {
            "number": to_quantity(header.number),
            "hash": to_hex_data(header.hash),
            "parentHash": to_hex_data(header.parent_hash),
            "stateRoot": to_hex_data(header.state_root),
            "transactionsRoot": to_hex_data(header.transactions_root),
            "receiptsRoot": to_hex_data(header.receipts_root),
            "timestamp": to_quantity(header.timestamp),
            "gasUsed": to_quantity(header.gas_used),
            "gasLimit": to_quantity(header.gas_limit),
            "miner": header.proposer.hex(),
            "extraData": to_hex_data(header.extra_data),
        }
        if full:
            body["transactions"] = [to_hex_data(tx.encode())
                                    for tx in block.transactions]
        else:
            body["transactions"] = [to_hex_data(tx.hash)
                                    for tx in block.transactions]
        return body

    def get_transaction_by_hash(self, tx_hash_hex: str) -> Optional[dict]:
        location = self.node.find_transaction(from_hex_data(tx_hash_hex))
        if location is None:
            return None
        block, index = location
        return self._tx_object(block, index)

    def get_transaction_by_index(self, tag: str, index_hex: str) -> Optional[dict]:
        number = from_quantity(tag) if tag != "latest" else self.node.head_number()
        block = self.node.get_block(number)
        index = from_quantity(index_hex)
        if block is None or index >= len(block.transactions):
            return None
        return self._tx_object(block, index)

    def _tx_object(self, block, index: int) -> dict:
        tx = block.transactions[index]
        return {
            "hash": to_hex_data(tx.hash),
            "blockNumber": to_quantity(block.number),
            "transactionIndex": to_quantity(index),
            "from": tx.sender.hex(),
            "to": tx.to.hex(),
            "value": to_quantity(tx.value),
            "nonce": to_quantity(tx.nonce),
            "gas": to_quantity(tx.gas_limit),
            "gasPrice": to_quantity(tx.gas_price),
            "input": to_hex_data(tx.data),
        }

    def get_transaction_receipt(self, tx_hash_hex: str) -> Optional[dict]:
        tx_hash = from_hex_data(tx_hash_hex)
        location = self.node.find_transaction(tx_hash)
        receipt = self.node.chain.get_receipt(tx_hash)
        if location is None or receipt is None:
            return None
        block, index = location
        return {
            "transactionHash": to_hex_data(tx_hash),
            "blockNumber": to_quantity(block.number),
            "transactionIndex": to_quantity(index),
            "status": to_quantity(receipt.status),
            "gasUsed": to_quantity(receipt.gas_used),
            "cumulativeGasUsed": to_quantity(receipt.cumulative_gas_used),
            "logs": [
                {
                    "address": log.address.hex(),
                    "topics": [to_hex_data(t) for t in log.topics],
                    "data": to_hex_data(log.data),
                }
                for log in receipt.logs
            ],
        }

    def send_raw_transaction(self, raw_hex: str) -> str:
        tx_hash = self.node.submit_transaction(from_hex_data(raw_hex))
        return to_hex_data(tx_hash)

    def get_proof(self, address_hex: str, slots: list,
                  tag: str = "latest") -> dict:
        """EIP-1186-style account/storage proof (what PARP piggybacks on)."""
        state = self._state_at_tag(tag)
        address = _address(address_hex)
        account = state.get_account(address)
        storage_proofs = []
        for slot_hex in slots:
            slot = from_hex_data(slot_hex).rjust(32, b"\x00")
            storage_proofs.append({
                "key": to_hex_data(slot),
                "value": to_hex_data(state.get_storage(address, slot)),
                "proof": [to_hex_data(n) for n in state.prove_storage(address, slot)],
            })
        return {
            "address": address.hex(),
            "balance": to_quantity(account.balance),
            "nonce": to_quantity(account.nonce),
            "storageHash": to_hex_data(account.storage_root),
            "codeHash": to_hex_data(account.code_hash),
            "accountProof": [to_hex_data(n) for n in state.prove_account(address)],
            "storageProof": storage_proofs,
        }


def _address(text: str) -> Address:
    raw = from_hex_data(text)
    if len(raw) != 20:
        raise JsonRpcError(INVALID_PARAMS, f"bad address length {len(raw)}")
    return Address(raw)
