"""JSON-RPC client over a pluggable byte transport."""

from __future__ import annotations

from itertools import count
from typing import Any, Callable

from .jsonrpc import (
    JsonRpcError,
    RpcRequest,
    decode_response,
    encode_request,
)

__all__ = ["RpcClient"]


class RpcClient:
    """Issues JSON-RPC calls through ``transport: bytes -> bytes``.

    The transport can be an in-process :class:`~repro.rpc.server.RpcServer`
    (``server.handle_raw``) or a simulated-network channel.
    """

    def __init__(self, transport: Callable[[bytes], bytes]) -> None:
        self._transport = transport
        self._ids = count(1)
        self.bytes_sent = 0
        self.bytes_received = 0

    def call(self, method: str, *params: Any) -> Any:
        """One RPC round-trip; raises :class:`JsonRpcError` on error results."""
        request = RpcRequest(method=method, params=params, id=next(self._ids))
        raw = encode_request(request)
        self.bytes_sent += len(raw)
        raw_response = self._transport(raw)
        self.bytes_received += len(raw_response)
        response = decode_response(raw_response)
        if response.id != request.id:
            raise JsonRpcError(-32603, "response id does not match request id")
        return response.raise_for_error()

    def request_size(self, method: str, *params: Any) -> int:
        """Size in bytes of the encoded request (Table II baseline numbers)."""
        return len(encode_request(RpcRequest(method=method, params=params, id=1)))
