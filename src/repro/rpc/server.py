"""JSON-RPC server shell: bytes in, bytes out, batch support."""

from __future__ import annotations

import json
from typing import Any

from ..node.fullnode import FullNode
from .api import EthereumAPI
from .jsonrpc import (
    INVALID_REQUEST,
    JsonRpcError,
    RpcRequest,
    RpcResponse,
    decode_request,
    encode_response,
)

__all__ = ["RpcServer"]


class RpcServer:
    """Dispatches raw JSON-RPC payloads against a full node's API.

    This is the plain, permissionless endpoint of §II-D: no authentication,
    no payment, no verifiability — the baseline PARP augments.
    """

    def __init__(self, node: FullNode) -> None:
        self.node = node
        self.api = EthereumAPI(node)
        self.requests_handled = 0
        self.bytes_in = 0
        self.bytes_out = 0

    def handle_raw(self, raw: bytes) -> bytes:
        """Handle a single request or a batch; always returns bytes."""
        self.bytes_in += len(raw)
        try:
            obj = json.loads(raw)
        except (json.JSONDecodeError, UnicodeDecodeError):
            out = encode_response(RpcResponse(
                id=None,
                error=JsonRpcError(-32700, "parse error").to_object(),
            ))
            self.bytes_out += len(out)
            return out
        if isinstance(obj, list):
            responses = [self._handle_object(item) for item in obj]
            out = json.dumps(
                [r.to_object() for r in responses], separators=(",", ":"),
            ).encode("utf-8")
        else:
            out = encode_response(self._handle_object(obj))
        self.bytes_out += len(out)
        return out

    def handle(self, request: RpcRequest) -> RpcResponse:
        """Handle an already-decoded request."""
        self.requests_handled += 1
        try:
            result = self.api.dispatch(request.method, request.params)
            return RpcResponse(id=request.id, result=result)
        except JsonRpcError as exc:
            return RpcResponse(id=request.id, error=exc.to_object())

    def _handle_object(self, obj: Any) -> RpcResponse:
        try:
            raw = json.dumps(obj, separators=(",", ":")).encode("utf-8")
            request = decode_request(raw)
        except JsonRpcError as exc:
            return RpcResponse(id=None, error=exc.to_object())
        except (TypeError, ValueError):
            return RpcResponse(
                id=None,
                error=JsonRpcError(INVALID_REQUEST, "invalid request").to_object(),
            )
        return self.handle(request)
