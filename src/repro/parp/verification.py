"""Light-client response verification — the six checks of §V-D.

The checks run in a strict order that mirrors the paper's rationale:
failures that would leave the client *unable to build a fraud proof* come
first and classify the response as INVALID (walk away, don't pay more);
only once the response is provably attributable to the full node do the
remaining checks classify failures as FRAUD (slashing evidence):

1. **Verify Request Hash** — the response must echo ``h_req``/``σ_req`` of
   our request; otherwise it is not linkable to what we asked (INVALID).
2. **Verify Response Signature** — ``σ_res`` must recover to the channel's
   full node over ``h_res`` computed with *our* channel id α; otherwise the
   response proves nothing (INVALID).
3. **Channel Identifier Check** — α is bound inside ``h_res``; a response
   signed for another channel fails check 2 (kept as an explicit step for
   fraud-blob submissions where α travels with the message) (INVALID).
4. **Payment Amount Check** — ``res.a`` must equal the signed ``req.a``;
   a mismatch is attributable and provable (FRAUD).
5. **Timestamp Check** — ``res.m_B`` must be at least the height of the
   block the request pinned via ``h_B``; staler is FRAUD.
6. **Verify Merkle Proof** — π_γ must authenticate R(γ) against the header
   roots at the relevant height; failure is FRAUD.  A header the client
   cannot obtain makes the response unverifiable (INVALID).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..crypto.keys import Address
from .messages import (
    BatchRequest,
    BatchResponse,
    MessageError,
    PARPRequest,
    PARPResponse,
    ResponseStatus,
)
from .queries import HeaderLookup, QueryFraud, Unverifiable, verify_query_result
from .states import ResponseClass

__all__ = ["VerificationReport", "classify_response", "classify_batch_response"]


@dataclass(frozen=True)
class VerificationReport:
    """Outcome of classifying one response."""

    classification: ResponseClass
    check: str               # which §V-D check decided the outcome
    detail: str = ""
    is_error_response: bool = False

    @property
    def valid(self) -> bool:
        return self.classification is ResponseClass.VALID

    @property
    def fraudulent(self) -> bool:
        return self.classification is ResponseClass.FRAUD


def classify_response(request: PARPRequest, response: PARPResponse,
                      alpha: bytes, full_node: Address,
                      request_height: int,
                      get_header: HeaderLookup) -> VerificationReport:
    """Run the §V-D checks; never raises, always returns a report.

    ``request_height`` is the height of the block whose hash the client put
    in ``req.h_B`` (the client always knows it — it chose the hash from its
    own header chain).
    """
    # 1. Verify Request Hash ------------------------------------------------ #
    if response.h_req != request.h_req:
        return VerificationReport(
            ResponseClass.INVALID, "request-hash",
            "response echoes a different request hash",
        )
    if response.sig_req != request.sig_req:
        return VerificationReport(
            ResponseClass.INVALID, "request-hash",
            "response echoes a different request signature",
        )

    # 2./3. Verify Response Signature (α-bound) ------------------------------- #
    try:
        signer = response.signer(alpha)
    except MessageError as exc:
        return VerificationReport(
            ResponseClass.INVALID, "response-signature", str(exc),
        )
    if signer != full_node:
        return VerificationReport(
            ResponseClass.INVALID, "response-signature",
            f"signed by {signer.hex()}, expected {full_node.hex()}",
        )

    # 4. Payment Amount Check -------------------------------------------------- #
    if response.a != request.a:
        return VerificationReport(
            ResponseClass.FRAUD, "payment-amount",
            f"request committed {request.a}, response claims {response.a}",
        )

    # 5. Timestamp Check --------------------------------------------------------- #
    if response.m_b < request_height:
        return VerificationReport(
            ResponseClass.FRAUD, "timestamp",
            f"response height {response.m_b} < request height {request_height}",
        )

    # Signed error responses carry no verifiable payload.
    if response.status != ResponseStatus.OK:
        return VerificationReport(
            ResponseClass.VALID, "error-response",
            "full node signed an error outcome", is_error_response=True,
        )

    # 6. Verify Merkle Proof -------------------------------------------------------- #
    try:
        verify_query_result(request.call, response, get_header)
    except QueryFraud as exc:
        return VerificationReport(ResponseClass.FRAUD, "merkle-proof", str(exc))
    except Unverifiable as exc:
        return VerificationReport(ResponseClass.INVALID, "merkle-proof", str(exc))
    except MessageError as exc:
        return VerificationReport(ResponseClass.INVALID, "merkle-proof", str(exc))

    return VerificationReport(ResponseClass.VALID, "all-checks")


def classify_batch_response(
        request: BatchRequest, response: BatchResponse, alpha: bytes,
        full_node: Address, request_height: int, get_header: HeaderLookup,
) -> tuple[VerificationReport, list[VerificationReport]]:
    """The §V-D checks lifted to a batch; never raises.

    Checks 1–5 run once over the batch envelope (digest echo, signature,
    payment amount, timestamp — the metadata is shared, so one pass covers
    all N queries).  Check 6 then runs per item against the *shared*
    multiproof node pool via :meth:`BatchResponse.item_view`.  Returns the
    overall report plus one report per item; the overall classification is
    the worst across the envelope and every item (FRAUD > INVALID > VALID).
    """
    # 1. Verify Request Hash ------------------------------------------------ #
    if response.h_req != request.h_req:
        return VerificationReport(
            ResponseClass.INVALID, "request-hash",
            "batch response echoes a different request hash",
        ), []
    if response.sig_req != request.sig_req:
        return VerificationReport(
            ResponseClass.INVALID, "request-hash",
            "batch response echoes a different request signature",
        ), []

    # 2./3. Verify Response Signature (α-bound) ----------------------------- #
    try:
        signer = response.signer(alpha)
    except MessageError as exc:
        return VerificationReport(
            ResponseClass.INVALID, "response-signature", str(exc),
        ), []
    if signer != full_node:
        return VerificationReport(
            ResponseClass.INVALID, "response-signature",
            f"signed by {signer.hex()}, expected {full_node.hex()}",
        ), []

    # Envelope sanity: the server must answer every call it signed for.
    if len(response) != len(request.calls):
        return VerificationReport(
            ResponseClass.FRAUD, "batch-arity",
            f"batch of {len(request.calls)} calls answered with "
            f"{len(response)} results",
        ), []

    # 4. Payment Amount Check ----------------------------------------------- #
    if response.a != request.a:
        return VerificationReport(
            ResponseClass.FRAUD, "payment-amount",
            f"batch committed {request.a}, response claims {response.a}",
        ), []

    # 5. Timestamp Check ----------------------------------------------------- #
    if response.m_b < request_height:
        return VerificationReport(
            ResponseClass.FRAUD, "timestamp",
            f"response height {response.m_b} < request height {request_height}",
        ), []

    # 6. Verify Merkle Proof, per item against the shared pool ---------------- #
    item_reports: list[VerificationReport] = []
    worst = VerificationReport(ResponseClass.VALID, "all-checks")
    for index, call in enumerate(request.calls):
        item = response.item_view(index)
        if item.status != ResponseStatus.OK:
            report = VerificationReport(
                ResponseClass.VALID, "error-response",
                "full node signed an error outcome", is_error_response=True,
            )
        else:
            report = _classify_item(call, item, get_header)
        item_reports.append(report)
        if _severity(report) > _severity(worst):
            worst = report
    return worst, item_reports


def _classify_item(call, item: PARPResponse,
                   get_header: HeaderLookup) -> VerificationReport:
    try:
        verify_query_result(call, item, get_header)
    except QueryFraud as exc:
        return VerificationReport(ResponseClass.FRAUD, "merkle-proof", str(exc))
    except Unverifiable as exc:
        return VerificationReport(ResponseClass.INVALID, "merkle-proof", str(exc))
    except MessageError as exc:
        return VerificationReport(ResponseClass.INVALID, "merkle-proof", str(exc))
    return VerificationReport(ResponseClass.VALID, "all-checks")


_SEVERITY = {
    ResponseClass.VALID: 0,
    ResponseClass.INVALID: 1,
    ResponseClass.FRAUD: 2,
}


def _severity(report: VerificationReport) -> int:
    return _SEVERITY[report.classification]
