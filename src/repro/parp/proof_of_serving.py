"""Proof of Serving — the §VIII reward-mechanism extension.

"PARP can form a new reward mechanism that we tentatively call 'Proof of
Serving' … Payment proofs signed by light clients act as receipts, which
full nodes can aggregate and submit to the network and claim a portion of
the block reward.  The main open issue is to address Sybil attacks whereby
a full node controls fake light clients and connections."

We implement the pipeline end to end:

* receipts are the ``(α, a, σ_a)`` payment proofs full nodes already hold,
* an epoch aggregator validates each receipt (signature, channel existence,
  budget backing) and weighs it,
* a reward pool splits an epoch's serving reward proportionally,
* Sybil resistance hooks: minimum channel budget, per-light-client weight
  caps, and reputation weighting (:mod:`repro.parp.reputation`) — the
  countermeasures the paper sketches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..crypto import Signature, SignatureError, recover_address
from ..crypto.keys import Address
from .messages import payment_digest

__all__ = ["ServingReceipt", "ReceiptValidator", "EpochClaim", "RewardPool"]


@dataclass(frozen=True)
class ServingReceipt:
    """One channel's payment proof, presented as evidence of serving."""

    alpha: bytes
    full_node: Address
    light_client: Address
    amount: int          # cumulative a
    signature: bytes     # σ_a by the light client
    #: individual queries the channel's updates paid for (batches count all
    #: their items); 0 means "unreported" and disables per-query weighting.
    queries: int = 0

    def verify_signature(self) -> bool:
        try:
            signer = recover_address(
                payment_digest(self.alpha, self.amount),
                Signature.from_bytes(self.signature),
            )
        except (SignatureError, ValueError):
            return False
        return signer == self.light_client


@dataclass
class ReceiptValidator:
    """Validates receipts against on-chain channel data + Sybil heuristics.

    ``channel_lookup(α)`` must return (light_client, full_node, budget,
    status) from the CMM, or None — receipts must be backed by channels that
    really exist and really locked funds, which is the paper's first line of
    Sybil defense (fake light clients still have to lock real budgets).
    """

    channel_lookup: Callable[[bytes], Optional[tuple[Address, Address, int, int]]]
    min_budget: int = 0
    reputation: Optional[Callable[[Address], float]] = None
    #: caps the weight a receipt earns per query it claims to have served.
    #: The count is FN-self-reported (σ_a only covers (α, a)), so this is a
    #: *soft* heuristic, not a proof: unreported counts are treated as one
    #: query (maximally conservative), while an inflated count merely raises
    #: the cap back toward the signature-backed ``amount`` — it can never
    #: increase weight beyond it.  Complements ``min_budget``/``reputation``
    #: against Sybil pairs shuttling large payments over few real queries.
    max_wei_per_query: Optional[int] = None

    def weigh(self, receipt: ServingReceipt) -> float:
        """Weight of a receipt for reward purposes; 0 rejects it."""
        if receipt.amount <= 0 or not receipt.verify_signature():
            return 0.0
        channel = self.channel_lookup(receipt.alpha)
        if channel is None:
            return 0.0
        light_client, full_node, budget, status = channel
        if light_client != receipt.light_client or full_node != receipt.full_node:
            return 0.0
        if status == 0:  # non-existent channel
            return 0.0
        if budget < self.min_budget or receipt.amount > budget:
            return 0.0
        weight = float(receipt.amount)
        if self.max_wei_per_query is not None:
            queries = max(receipt.queries, 1)  # unreported counts cap hardest
            weight = min(weight, float(self.max_wei_per_query * queries))
        if self.reputation is not None:
            weight *= max(0.0, min(1.0, self.reputation(receipt.light_client)))
        return weight


@dataclass
class EpochClaim:
    """A full node's aggregate claim for one epoch."""

    full_node: Address
    receipts: list[ServingReceipt] = field(default_factory=list)

    def add(self, receipt: ServingReceipt) -> None:
        if receipt.full_node != self.full_node:
            raise ValueError("receipt belongs to another full node")
        self.receipts.append(receipt)


@dataclass
class RewardPool:
    """Distributes an epoch's serving reward proportionally to valid weight.

    ``per_client_cap`` bounds how much weight any single light client can
    contribute to one node's claim — a cheap mitigation against one Sybil
    client being replayed many times.
    """

    epoch_reward: int
    validator: ReceiptValidator
    per_client_cap: Optional[float] = None

    def score_claim(self, claim: EpochClaim) -> float:
        by_client: dict[Address, float] = {}
        for receipt in claim.receipts:
            weight = self.validator.weigh(receipt)
            if weight <= 0:
                continue
            prev = by_client.get(receipt.light_client, 0.0)
            by_client[receipt.light_client] = max(prev, weight)  # no replay sum
        if self.per_client_cap is not None:
            by_client = {
                client: min(weight, self.per_client_cap)
                for client, weight in by_client.items()
            }
        return sum(by_client.values())

    def distribute(self, claims: list[EpochClaim]) -> dict[Address, int]:
        """Split the epoch reward proportionally to each node's score."""
        scores = {claim.full_node: self.score_claim(claim) for claim in claims}
        total = sum(scores.values())
        if total <= 0:
            return {node: 0 for node in scores}
        payouts: dict[Address, int] = {}
        distributed = 0
        nodes = sorted(scores, key=lambda a: a.to_bytes())
        for node in nodes[:-1]:
            share = int(self.epoch_reward * scores[node] / total)
            payouts[node] = share
            distributed += share
        payouts[nodes[-1]] = self.epoch_reward - distributed  # no dust lost
        return payouts
