"""Protocol-wide constants for PARP.

Field widths define the canonical wire layout of Fig. 3 and therefore the
message-size overheads of Table II:

* request metadata: α(16) ‖ h_B(32) ‖ a(16) ‖ h_req(32) ‖ σ_a(65) ‖ σ_req(65)
  = **226 bytes**,
* response metadata: status(1) ‖ m_B(8) ‖ a(16) ‖ h_req(32) ‖ σ_req(65) ‖
  σ_res(65) = **187 bytes** (the channel id is carried by the channel-scoped
  transport session and inside the signed pre-image, not resent on the wire).
"""

from __future__ import annotations

__all__ = [
    "ALPHA_BYTES",
    "AMOUNT_BYTES",
    "HASH_BYTES",
    "SIGNATURE_BYTES",
    "HEIGHT_BYTES",
    "STATUS_BYTES",
    "REQUEST_OVERHEAD_BYTES",
    "RESPONSE_OVERHEAD_BYTES",
    "MILLIS_BYTES",
    "OVERLOAD_OVERHEAD_BYTES",
    "BATCH_PROTOCOL_VERSION",
    "BATCH_REQUEST_OVERHEAD_BYTES",
    "BATCH_RESPONSE_OVERHEAD_BYTES",
    "DEFAULT_SELECTION_THRESHOLD",
    "DEFAULT_MIN_SESSIONS",
    "DEFAULT_CHANNEL_BUDGET",
    "MAX_AMOUNT",
    "MIN_FULL_NODE_DEPOSIT",
    "DISPUTE_WINDOW_BLOCKS",
    "UNBONDING_BLOCKS",
    "HANDSHAKE_TIMEOUT_SECONDS",
    "DEFAULT_HANDSHAKE_EXPIRY_SECONDS",
    "LIVENESS_PERIOD_SECONDS",
    "BLOCKHASH_WINDOW",
    "WEI_PER_TOKEN",
]

# -- wire-format field widths (Table II) ---------------------------------- #
ALPHA_BYTES = 16       # channel identifier α (uint128)
AMOUNT_BYTES = 16      # cumulative payment amount a (uint128)
HASH_BYTES = 32
SIGNATURE_BYTES = 65   # recoverable ECDSA (r ‖ s ‖ v)
HEIGHT_BYTES = 8       # block height m_B (uint64)
STATUS_BYTES = 1

REQUEST_OVERHEAD_BYTES = (
    ALPHA_BYTES + HASH_BYTES + AMOUNT_BYTES + HASH_BYTES
    + SIGNATURE_BYTES + SIGNATURE_BYTES
)  # = 226
RESPONSE_OVERHEAD_BYTES = (
    STATUS_BYTES + HEIGHT_BYTES + AMOUNT_BYTES + HASH_BYTES
    + SIGNATURE_BYTES + SIGNATURE_BYTES
)  # = 187

MAX_AMOUNT = (1 << (8 * AMOUNT_BYTES)) - 1

#: fixed-point u32 fields of the Overloaded reply (load factor, retry-after
#: seconds, fee multiplier — all in thousandths).
MILLIS_BYTES = 4
#: Overloaded reply wire size (it is all metadata — no payload):
#: status(1) ‖ m_B(8) ‖ load(4) ‖ retry_after(4) ‖ fee_mult(4) ‖ h_req(32) ‖
#: σ_ovl(65) = **118 bytes** — cheaper than any served response, which is the
#: point: shedding must cost the server (and the wire) less than serving.
OVERLOAD_OVERHEAD_BYTES = (
    STATUS_BYTES + HEIGHT_BYTES + 3 * MILLIS_BYTES + HASH_BYTES
    + SIGNATURE_BYTES
)  # = 118

# -- batched queries (multiproof extension) -------------------------------- #
#: version of the batch sub-protocol; a client only batches against a server
#: advertising the same version, and falls back to per-key queries otherwise.
BATCH_PROTOCOL_VERSION = 1
#: batch request metadata: version(1) ‖ the 226 bytes of a single request.
BATCH_REQUEST_OVERHEAD_BYTES = 1 + REQUEST_OVERHEAD_BYTES  # = 227
#: batch response metadata layout matches a single response (187 bytes); the
#: per-item statuses/results/multiproof travel in the RLP payload.
BATCH_RESPONSE_OVERHEAD_BYTES = RESPONSE_OVERHEAD_BYTES

# -- marketplace (multi-server client) -------------------------------------- #
#: servers scoring below this are never selected; must stay at or below the
#: reputation ledger's ``newcomer_score`` or fresh servers could never join.
DEFAULT_SELECTION_THRESHOLD = 0.05
#: concurrent channels a marketplace client keeps open (≥2 gives it a warm
#: standby to fail over to mid-query without an on-chain round first).
DEFAULT_MIN_SESSIONS = 2
#: default budget locked into each marketplace payment channel.
DEFAULT_CHANNEL_BUDGET = 10 ** 15

# -- economics ------------------------------------------------------------- #
WEI_PER_TOKEN = 10 ** 18
#: collateral a full node must lock before it may serve (paper §IV-B).
MIN_FULL_NODE_DEPOSIT = 32 * WEI_PER_TOKEN

# -- on-chain timing --------------------------------------------------------- #
#: challenge period after a CloseChannel transaction (paper §IV-E.4).
DISPUTE_WINDOW_BLOCKS = 10
#: delay between a full node stopping service and withdrawing collateral.
UNBONDING_BLOCKS = 32
#: the FDM can authenticate headers only inside this window (paper §VI).
BLOCKHASH_WINDOW = 256

# -- off-chain timing -------------------------------------------------------- #
#: hsTimer from Algorithm 1: how long the LC waits for HSCONFIRM.
HANDSHAKE_TIMEOUT_SECONDS = 10.0
#: how long a full node's handshake confirmation stays redeemable.
DEFAULT_HANDSHAKE_EXPIRY_SECONDS = 120.0
#: cadence of the light client's channel liveness probe (paper §V-C).
LIVENESS_PERIOD_SECONDS = 30.0
