"""Routing PARP queries to state shards.

Which shard serves a call is decided by the *secure-trie key* its proof
walks: ``keccak256(address)`` for the state-keyed methods.  Everything else
(transaction/receipt lookups, ``eth_sendRawTransaction``, the free probes)
is unsharded — only the state trie is partitioned; every serving node
follows the full chain, so any shard server answers those.

One function, shared by client-side scatter routing, server-side range
enforcement, and the directory's coverage checks, so the three views can
never disagree about where a key lives (the shard-partitioner property
tests pin this).
"""

from __future__ import annotations

from typing import Optional

from ..crypto.keccak import keccak256
from .messages import MessageError, RpcCall

__all__ = ["STATE_KEYED_METHODS", "shard_key_of_call"]

#: method → index of the address parameter whose hashed key routes the call.
STATE_KEYED_METHODS: dict[str, int] = {
    "eth_getBalance": 0,
    "eth_getStorageAt": 0,
}


def shard_key_of_call(call: RpcCall) -> Optional[bytes]:
    """The hashed state key that routes ``call``, or None when unsharded.

    A malformed address parameter also yields None: routing must not
    pre-judge a call the serving/verification layers will reject with a
    properly attributable error.
    """
    index = STATE_KEYED_METHODS.get(call.method)
    if index is None:
        return None
    try:
        raw = call.param_bytes(index, exact=20)
    except MessageError:
        return None
    return keccak256(raw)
