"""Fraud-proof construction and witness submission (paper §IV-F).

When the light client classifies a response as FRAUD it assembles a
:class:`FraudProofPackage` — the request, the response (with α re-attached),
and the block headers the on-chain module needs to re-run the checks.  It
cannot submit the package through the misbehaving node ("obviously we cannot
trust the full node to submit a proof of its own fraudulent behavior"), so it
hands it to a *witness* full node, which wraps it in a transaction to the
Fraud Detection Module, pays the gas, and collects the witness share of the
slashed deposit.  The light client needs no payment channel with the witness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..chain.header import BlockHeader
from ..chain.transaction import UnsignedTransaction
from ..contracts.addresses import FRAUD_MODULE_ADDRESS
from ..crypto.keys import Address, PrivateKey
from ..node.fullnode import FullNode
from ..rlp import codec as rlp
from ..vm.abi import encode_call
from .messages import PARPRequest, PARPResponse

__all__ = [
    "FraudProofError",
    "FraudProofPackage",
    "needed_proof_header_number",
    "build_fraud_package",
    "WitnessService",
]

_STATE_QUERIES = frozenset({"eth_getBalance", "eth_getStorageAt"})
_INCLUSION_QUERIES = frozenset({
    "eth_sendRawTransaction",
    "eth_getTransactionByBlockNumberAndIndex",
    "eth_getTransactionReceipt",
})


class FraudProofError(Exception):
    """Raised when a fraud package cannot be assembled or submitted."""


def needed_proof_header_number(request: PARPRequest,
                               response: PARPResponse) -> Optional[int]:
    """Which block's header the FDM needs to adjudicate the Merkle check.

    State queries prove against the state root at ``res.m_B``; inclusion
    queries prove against the tx/receipt roots of the block named in the
    result payload.
    """
    method = request.call.method
    if method in _STATE_QUERIES:
        return response.m_b
    if method in _INCLUSION_QUERIES:
        try:
            item = rlp.decode(response.result)
        except rlp.RLPError:
            return response.m_b  # undecodable result: any canonical header works
        if isinstance(item, list) and len(item) == 3 and isinstance(item[0], bytes):
            if item[0] == b"":
                return None  # pending acknowledgement, nothing to prove
            try:
                return rlp.decode_int(item[0])
            except rlp.RLPError:
                return response.m_b
        return response.m_b
    return None


@dataclass(frozen=True)
class FraudProofPackage:
    """Everything the FDM needs: evidence plus authenticated headers."""

    alpha: bytes
    request: PARPRequest
    response: PARPResponse
    proof_header: BlockHeader   # canonical header for the Merkle adjudication
    req_header: BlockHeader     # the header pinned by req.h_B (height reference)

    def fdm_args(self, witness: Address) -> list[Any]:
        """Argument list for ``FraudModule.submit_fraud_proof``."""
        return [
            self.request.encode_wire(),
            self.response.encode_for_fraud(self.alpha),
            self.proof_header.encode(),
            self.req_header.encode(),
            witness,
        ]

    def calldata(self, witness: Address) -> bytes:
        return encode_call("submit_fraud_proof", self.fdm_args(witness))

    @property
    def size_bytes(self) -> int:
        """Total evidence size (drives the fraud-proof gas cost in Table IV)."""
        return sum(len(b) for b in self.fdm_args(Address.zero())[:4]) + 20


def build_fraud_package(request: PARPRequest, response: PARPResponse,
                        alpha: bytes, get_header,
                        get_by_hash=None) -> FraudProofPackage:
    """Assemble a package from the client's local header chain.

    ``get_header`` maps a block number to a header and ``get_by_hash`` maps
    a block hash to a header (both from the client's synced chain).  Raises
    :class:`FraudProofError` when the needed headers are not locally
    available — in that case the response was classified INVALID, not
    FRAUD, so this should not happen for genuine fraud classifications.
    """
    # The request pinned h_B from the client's own chain, so the client can
    # always resolve it — by hash when an index is available, otherwise by
    # scanning down from the response height.
    req_header = get_by_hash(request.h_b) if get_by_hash is not None else None
    if req_header is None:
        for offset in range(0, 512):
            header = get_header(response.m_b - offset)
            if header is None:
                break
            if header.hash == request.h_b:
                req_header = header
                break
    if req_header is None:
        raise FraudProofError("cannot locate the header pinned by req.h_B")
    number = needed_proof_header_number(request, response)
    proof_number = number if number is not None else req_header.number
    proof_header = get_header(proof_number)
    if proof_header is None:
        raise FraudProofError(f"missing header {proof_number} for the proof check")
    return FraudProofPackage(
        alpha=alpha, request=request, response=response,
        proof_header=proof_header, req_header=req_header,
    )


class WitnessService:
    """A witness full node that submits fraud proofs on-chain (§IV-F).

    Incentive: the Deposit Module pays the witness a fixed share of the
    slashed collateral, which (for any sane deposit size) dwarfs the gas
    cost of the submission.
    """

    def __init__(self, node: FullNode, key: Optional[PrivateKey] = None,
                 gas_price: int = 12 * 10 ** 9,
                 gas_limit: int = 2_000_000) -> None:
        self.node = node
        self.key = key or node.key
        self.gas_price = gas_price
        self.gas_limit = gas_limit
        self.submitted = 0
        self.confirmed = 0

    @property
    def address(self) -> Address:
        return self.key.address

    def submit(self, package: FraudProofPackage) -> bytes:
        """Build, sign, submit, and mine the fraud-proof transaction.

        Returns the transaction hash; raises :class:`FraudProofError` if the
        transaction reverted (i.e. the FDM found no fraud).
        """
        sender = self.key.address
        nonce = self.node.chain.state.nonce_of(sender)
        tx = UnsignedTransaction(
            nonce=nonce, gas_price=self.gas_price, gas_limit=self.gas_limit,
            to=FRAUD_MODULE_ADDRESS, value=0,
            data=package.calldata(self.address),
        ).sign(self.key)
        tx_hash = self.node.submit_transaction(tx.encode())
        location = self.node.ensure_mined(tx_hash)
        self.submitted += 1
        if location is None:
            raise FraudProofError("fraud-proof transaction was not included")
        receipt = self.node.chain.get_receipt(tx_hash)
        if receipt is None or not receipt.succeeded:
            raise FraudProofError(
                "fraud-proof transaction reverted (no fraud adjudicated)"
            )
        self.confirmed += 1
        return tx_hash

    def submit_equivocation(self, proof, reporter: Optional[Address] = None) -> bytes:
        """Submit a head-announcement equivocation proof on-chain.

        ``proof`` is a :class:`repro.gossip.heads.HeadEquivocationProof`;
        ``reporter`` (default: the witness itself) takes the defrauded-party
        share of the slash.  Same contract as :meth:`submit` otherwise.
        """
        reporter = reporter if reporter is not None else self.address
        calldata = encode_call("submit_head_equivocation", [
            proof.first.header.encode(),
            proof.first.signature,
            proof.second.header.encode(),
            proof.second.signature,
            reporter,
            self.address,
        ])
        sender = self.key.address
        nonce = self.node.chain.state.nonce_of(sender)
        tx = UnsignedTransaction(
            nonce=nonce, gas_price=self.gas_price, gas_limit=self.gas_limit,
            to=FRAUD_MODULE_ADDRESS, value=0, data=calldata,
        ).sign(self.key)
        tx_hash = self.node.submit_transaction(tx.encode())
        location = self.node.ensure_mined(tx_hash)
        self.submitted += 1
        if location is None:
            raise FraudProofError("equivocation transaction was not included")
        receipt = self.node.chain.get_receipt(tx_hash)
        if receipt is None or not receipt.succeeded:
            raise FraudProofError(
                "equivocation transaction reverted (no slash executed)"
            )
        self.confirmed += 1
        return tx_hash
