"""Fee schedules for PARP RPC requests.

The paper leaves the fee schedule as future work (§VIII, "designing a fee
schedule for RPC requests") but the protocol requires one: every request's
cumulative amount must grow by at least the price of the call, or the full
node refuses to serve.  We implement two schedules:

* :class:`FlatFeeSchedule` — every call costs the same (what the simplest
  provider plans look like, cf. Table I "plan tiers");
* :class:`CallBasedFeeSchedule` — per-method prices, the "call-based"
  pricing 3 of 5 surveyed providers use ("charge based on varied call types
  for a fairer fee calculation", §II-C).

Prices are in wei of the channel's token.  The ablation bench
``bench_ablation_pricing`` compares budget consumption under both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from .messages import RpcCall

__all__ = [
    "FeeSchedule",
    "FlatFeeSchedule",
    "CallBasedFeeSchedule",
    "RepricedFeeSchedule",
    "DEFAULT_FEE_SCHEDULE",
    "REFERENCE_BASKET",
    "GWEI",
    "MULTIPLIER_SCALE",
    "DEFAULT_PRICING_KNEE",
    "DEFAULT_PRICING_CAP",
    "load_multiplier",
]

GWEI = 10 ** 9

#: Reference prices (wei/call).  Reads are cheap; writes and proof-heavy
#: queries cost more, mirroring providers' "compute unit" weighting.
_DEFAULT_PRICES: dict[str, int] = {
    "eth_blockNumber": 1 * GWEI,
    "eth_chainId": 1 * GWEI,
    "eth_getBalance": 10 * GWEI,
    "eth_getStorageAt": 15 * GWEI,
    "eth_getTransactionByBlockNumberAndIndex": 15 * GWEI,
    "eth_getTransactionReceipt": 20 * GWEI,
    "eth_sendRawTransaction": 50 * GWEI,
    "parp_channelStatus": 1 * GWEI,
    # one checkpoint-sync page (up to MAX_UPDATE_PAGE headers): far below
    # per-header read pricing because headers are cheap to serve in bulk,
    # but billable — unlike the free tier, the page arrives as a *signed*
    # response the client can escalate to the FDM
    "parp_updatesByRange": 25 * GWEI,
}


#: the method mix marketplace scoring prices every provider against — the
#: read-heavy basket dApp frontends actually send (cf. Table I traffic).
REFERENCE_BASKET = (
    "eth_getBalance",
    "eth_getStorageAt",
    "eth_blockNumber",
    "eth_getTransactionReceipt",
)


class FeeSchedule:
    """Interface: what does one RPC call cost?"""

    def price(self, call: RpcCall) -> int:
        raise NotImplementedError

    def reference_price(self, methods: Sequence[str] = REFERENCE_BASKET) -> int:
        """Mean price of a standard call basket — the comparable sticker
        price marketplace selection weighs reputation against."""
        calls = [RpcCall.create(method) for method in methods]
        if not calls:
            raise ValueError("reference basket must not be empty")
        return sum(self.price(call) for call in calls) // len(calls)

    def batch_price(self, calls: Sequence[RpcCall]) -> int:
        """Price of serving ``calls`` as one batch (one channel update).

        Defaults to the sum of the per-call prices; schedules may discount
        batches because a batch amortises signature checks and dedups the
        Merkle proof the server ships.
        """
        return sum(self.price(call) for call in calls)

    def describe(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class FlatFeeSchedule(FeeSchedule):
    """Every call costs ``flat_price`` wei."""

    flat_price: int = 10 * GWEI

    def price(self, call: RpcCall) -> int:
        return self.flat_price

    def describe(self) -> str:
        return f"flat({self.flat_price} wei/call)"


@dataclass(frozen=True)
class CallBasedFeeSchedule(FeeSchedule):
    """Per-method prices with a default for unlisted methods.

    ``batch_rebate`` is a per-call discount applied to every call after the
    first in a batch: batched calls share one wire round, two signature
    verifications, and a deduplicated proof, so serving them costs the node
    strictly less than N separate requests.
    """

    prices: Mapping[str, int] = field(default_factory=lambda: dict(_DEFAULT_PRICES))
    default_price: int = 10 * GWEI
    batch_rebate: int = 1 * GWEI

    def price(self, call: RpcCall) -> int:
        return self.prices.get(call.method, self.default_price)

    def batch_price(self, calls: Sequence[RpcCall]) -> int:
        total = sum(self.price(call) for call in calls)
        if len(calls) > 1:
            rebate = self.batch_rebate * (len(calls) - 1)
            total = max(total - rebate, self.price(calls[0]))
        return total

    def describe(self) -> str:
        return f"call-based({len(self.prices)} methods)"


DEFAULT_FEE_SCHEDULE = CallBasedFeeSchedule()


# --------------------------------------------------------------------------- #
# Dynamic (load-tracking) pricing
# --------------------------------------------------------------------------- #

#: fixed-point scale for fee multipliers on the wire (u32 millis): 1000 = 1.0×.
MULTIPLIER_SCALE = 1000

#: load factor below which quotes stay at the base price — a server under
#: half load has spare capacity, and repricing it would only churn rankings.
DEFAULT_PRICING_KNEE = 0.5

#: multiplier ceiling: past total saturation the quote stops climbing (an
#: unbounded curve would quote prices no client could rationally accept,
#: which is indistinguishable from refusing service — shedding does that
#: honestly instead).
DEFAULT_PRICING_CAP = 4.0


def load_multiplier(load: float, knee: float = DEFAULT_PRICING_KNEE,
                    cap: float = DEFAULT_PRICING_CAP) -> float:
    """The load→fee-multiplier curve: 1.0 up to ``knee``, then a quadratic
    ramp reaching ``cap`` at load 1.0 (full admission queue) and clamped
    there beyond.

    Invariants (property-tested): ``load_multiplier(0) == 1.0`` for any
    valid knee/cap; monotone nondecreasing in ``load``; bounded in
    ``[1.0, cap]``.  The quadratic ramp keeps quotes sticky near the knee
    (small load wobbles don't reshuffle client rankings) while escalating
    sharply as the queue approaches the shed threshold.
    """
    if cap < 1.0:
        raise ValueError("multiplier cap must be at least 1.0")
    if not 0.0 <= knee < 1.0:
        raise ValueError("pricing knee must lie in [0, 1)")
    if load <= knee:
        return 1.0
    ramp = min(1.0, (load - knee) / (1.0 - knee))
    return 1.0 + (cap - 1.0) * ramp * ramp


@dataclass(frozen=True)
class RepricedFeeSchedule(FeeSchedule):
    """A base schedule scaled by a server's current load multiplier.

    This is the *quote* a loaded server republishes to the marketplace —
    fixed-point (``multiplier_millis`` / :data:`MULTIPLIER_SCALE`) so the
    advertisement and the signed ``Overloaded`` reply carry the identical
    value.  Enforcement at the server stays on the **base** schedule (the
    floor): a client that paid an older, cheaper quote is still served —
    repricing steers *selection*, it never weaponizes the payment check
    against clients holding stale advertisements.
    """

    base: FeeSchedule = field(default_factory=lambda: DEFAULT_FEE_SCHEDULE)
    multiplier_millis: int = MULTIPLIER_SCALE

    def __post_init__(self) -> None:
        if self.multiplier_millis < MULTIPLIER_SCALE:
            raise ValueError("repricing cannot quote below the base schedule")

    @property
    def multiplier(self) -> float:
        return self.multiplier_millis / MULTIPLIER_SCALE

    def _scale(self, wei: int) -> int:
        return wei * self.multiplier_millis // MULTIPLIER_SCALE

    def price(self, call: RpcCall) -> int:
        return self._scale(self.base.price(call))

    def batch_price(self, calls: Sequence[RpcCall]) -> int:
        return self._scale(self.base.batch_price(calls))

    def describe(self) -> str:
        return f"{self.base.describe()}×{self.multiplier:.3f}"
