"""Fee schedules for PARP RPC requests.

The paper leaves the fee schedule as future work (§VIII, "designing a fee
schedule for RPC requests") but the protocol requires one: every request's
cumulative amount must grow by at least the price of the call, or the full
node refuses to serve.  We implement two schedules:

* :class:`FlatFeeSchedule` — every call costs the same (what the simplest
  provider plans look like, cf. Table I "plan tiers");
* :class:`CallBasedFeeSchedule` — per-method prices, the "call-based"
  pricing 3 of 5 surveyed providers use ("charge based on varied call types
  for a fairer fee calculation", §II-C).

Prices are in wei of the channel's token.  The ablation bench
``bench_ablation_pricing`` compares budget consumption under both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from .messages import RpcCall

__all__ = [
    "FeeSchedule",
    "FlatFeeSchedule",
    "CallBasedFeeSchedule",
    "DEFAULT_FEE_SCHEDULE",
    "REFERENCE_BASKET",
    "GWEI",
]

GWEI = 10 ** 9

#: Reference prices (wei/call).  Reads are cheap; writes and proof-heavy
#: queries cost more, mirroring providers' "compute unit" weighting.
_DEFAULT_PRICES: dict[str, int] = {
    "eth_blockNumber": 1 * GWEI,
    "eth_chainId": 1 * GWEI,
    "eth_getBalance": 10 * GWEI,
    "eth_getStorageAt": 15 * GWEI,
    "eth_getTransactionByBlockNumberAndIndex": 15 * GWEI,
    "eth_getTransactionReceipt": 20 * GWEI,
    "eth_sendRawTransaction": 50 * GWEI,
    "parp_channelStatus": 1 * GWEI,
    # one checkpoint-sync page (up to MAX_UPDATE_PAGE headers): far below
    # per-header read pricing because headers are cheap to serve in bulk,
    # but billable — unlike the free tier, the page arrives as a *signed*
    # response the client can escalate to the FDM
    "parp_updatesByRange": 25 * GWEI,
}


#: the method mix marketplace scoring prices every provider against — the
#: read-heavy basket dApp frontends actually send (cf. Table I traffic).
REFERENCE_BASKET = (
    "eth_getBalance",
    "eth_getStorageAt",
    "eth_blockNumber",
    "eth_getTransactionReceipt",
)


class FeeSchedule:
    """Interface: what does one RPC call cost?"""

    def price(self, call: RpcCall) -> int:
        raise NotImplementedError

    def reference_price(self, methods: Sequence[str] = REFERENCE_BASKET) -> int:
        """Mean price of a standard call basket — the comparable sticker
        price marketplace selection weighs reputation against."""
        calls = [RpcCall.create(method) for method in methods]
        if not calls:
            raise ValueError("reference basket must not be empty")
        return sum(self.price(call) for call in calls) // len(calls)

    def batch_price(self, calls: Sequence[RpcCall]) -> int:
        """Price of serving ``calls`` as one batch (one channel update).

        Defaults to the sum of the per-call prices; schedules may discount
        batches because a batch amortises signature checks and dedups the
        Merkle proof the server ships.
        """
        return sum(self.price(call) for call in calls)

    def describe(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class FlatFeeSchedule(FeeSchedule):
    """Every call costs ``flat_price`` wei."""

    flat_price: int = 10 * GWEI

    def price(self, call: RpcCall) -> int:
        return self.flat_price

    def describe(self) -> str:
        return f"flat({self.flat_price} wei/call)"


@dataclass(frozen=True)
class CallBasedFeeSchedule(FeeSchedule):
    """Per-method prices with a default for unlisted methods.

    ``batch_rebate`` is a per-call discount applied to every call after the
    first in a batch: batched calls share one wire round, two signature
    verifications, and a deduplicated proof, so serving them costs the node
    strictly less than N separate requests.
    """

    prices: Mapping[str, int] = field(default_factory=lambda: dict(_DEFAULT_PRICES))
    default_price: int = 10 * GWEI
    batch_rebate: int = 1 * GWEI

    def price(self, call: RpcCall) -> int:
        return self.prices.get(call.method, self.default_price)

    def batch_price(self, calls: Sequence[RpcCall]) -> int:
        total = sum(self.price(call) for call in calls)
        if len(calls) > 1:
            rebate = self.batch_rebate * (len(calls) - 1)
            total = max(total - rebate, self.price(calls[0]))
        return total

    def describe(self) -> str:
        return f"call-based({len(self.prices)} methods)"


DEFAULT_FEE_SCHEDULE = CallBasedFeeSchedule()
