"""Protocol state enumerations (the tripartite diagram of Fig. 4)."""

from __future__ import annotations

from enum import Enum

__all__ = ["LightClientState", "ChannelStatus", "FullNodeState", "ResponseClass"]


class LightClientState(Enum):
    """Light-client lifecycle states (Fig. 4, bottom track)."""

    IDLE = "idle"
    HANDSHAKING = "handshaking"
    UNBONDED = "unbonded"      # OpenChannel sent, receipt not yet verified
    BONDED = "bonded"          # channel open; request/response phase
    UNBONDING = "unbonding"    # CloseChannel sent, dispute window running


class FullNodeState(Enum):
    """Full-node availability states (Fig. 4, top track)."""

    NOT_AVAILABLE = "not-available"   # no collateral deposited
    AVAILABLE = "available"           # staked and ready to serve


class ChannelStatus(Enum):
    """On-chain payment-channel states (Fig. 4, middle track).

    Integer values match the CMM storage encoding.
    """

    NONE = 0
    OPEN = 1
    CLOSING = 2
    CLOSED = 3


class ResponseClass(Enum):
    """Outcome of light-client response verification (paper §IV-F).

    * VALID — all checks pass; the client trusts the response.
    * INVALID — the client cannot trust the response but also cannot hold
      the full node accountable (no usable fraud proof); it should leave.
    * FRAUD — provably wrong; the client can construct a fraud proof.
    """

    VALID = "valid"
    INVALID = "invalid"
    FRAUD = "fraudulent"
