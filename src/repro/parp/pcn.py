"""Payment-channel network (PCN) routing — the §VIII extension.

The paper's limitation: "our protocol requires a light client to set up a
payment channel individually with every full node it intends to connect
with, adding costs and potentially discouraging multiple connections.
Payment channel networks could address this by avoiding opening a dedicated
channel per client-server pair."

This module models exactly that trade-off: a graph of funded channels where
a light client with *one* on-chain channel can pay any reachable full node
through intermediaries, two-phase (reserve → settle) with per-hop fees.
The ablation bench compares the on-chain cost of N dedicated channels
against 1 channel + routed payments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import networkx as nx

from ..crypto.keys import Address

__all__ = ["PCNError", "ChannelEdge", "Route", "ChannelGraph"]


class PCNError(Exception):
    """Routing or capacity failures in the channel graph."""


@dataclass
class ChannelEdge:
    """A directed channel with spendable capacity and a relay fee."""

    capacity: int
    fee_ppm: int = 1_000      # proportional fee, parts-per-million
    base_fee: int = 0
    reserved: int = 0

    @property
    def available(self) -> int:
        return self.capacity - self.reserved

    def fee_for(self, amount: int) -> int:
        return self.base_fee + amount * self.fee_ppm // 1_000_000


@dataclass(frozen=True)
class Route:
    """A priced path through the channel graph."""

    hops: tuple[Address, ...]       # src, intermediaries…, dst
    amount: int                      # what the destination receives
    total_sent: int                  # what the source pays (amount + fees)

    @property
    def fees(self) -> int:
        return self.total_sent - self.amount

    @property
    def num_hops(self) -> int:
        return len(self.hops) - 1


class ChannelGraph:
    """Off-chain multi-hop payment routing over funded channels.

    Capacities model the unidirectional budgets of PARP channels; routing a
    payment shifts capacity hop by hop.  The implementation is deliberately
    simpler than Lightning (no onions, no time locks) — what matters for
    the reproduction is the *economics*: reachability without per-pair
    on-chain channels, at the price of per-hop fees.
    """

    def __init__(self) -> None:
        self._graph = nx.DiGraph()

    # ------------------------------------------------------------------ #
    # Topology
    # ------------------------------------------------------------------ #

    def add_channel(self, src: Address, dst: Address, capacity: int,
                    fee_ppm: int = 1_000, base_fee: int = 0) -> None:
        if capacity <= 0:
            raise PCNError("channel capacity must be positive")
        self._graph.add_edge(
            src, dst, channel=ChannelEdge(capacity, fee_ppm, base_fee),
        )

    def channel(self, src: Address, dst: Address) -> Optional[ChannelEdge]:
        data = self._graph.get_edge_data(src, dst)
        return data["channel"] if data else None

    def capacity(self, src: Address, dst: Address) -> int:
        edge = self.channel(src, dst)
        return edge.available if edge else 0

    @property
    def num_channels(self) -> int:
        return self._graph.number_of_edges()

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #

    def find_route(self, src: Address, dst: Address, amount: int,
                   max_hops: int = 6) -> Route:
        """Cheapest feasible route delivering ``amount`` to ``dst``.

        Fees accumulate backwards (each hop forwards amount + downstream
        fees), so edge feasibility depends on position; we search over the
        fee-weighted graph restricted to edges that could carry the amount,
        then verify the chosen path hop by hop.
        """
        if amount <= 0:
            raise PCNError("payment amount must be positive")
        usable = nx.DiGraph()
        for u, v, data in self._graph.edges(data=True):
            edge: ChannelEdge = data["channel"]
            if edge.available >= amount:  # lower bound; verified again below
                usable.add_edge(u, v, weight=edge.fee_for(amount) + 1)
        try:
            path = nx.shortest_path(usable, src, dst, weight="weight")
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            raise PCNError(
                f"no route for {amount} from {src.hex()[:10]} to {dst.hex()[:10]}"
            ) from None
        if len(path) - 1 > max_hops:
            raise PCNError(f"route exceeds {max_hops} hops")
        # price the path precisely, from destination backwards
        outstanding = amount
        for u, v in zip(reversed(path[:-1]), reversed(path[1:])):
            edge = self.channel(u, v)
            if edge is None or edge.available < outstanding:
                raise PCNError("capacity changed during routing")
            if u != src:
                outstanding += edge.fee_for(outstanding)
        return Route(hops=tuple(path), amount=amount, total_sent=outstanding)

    # ------------------------------------------------------------------ #
    # Payments (two-phase)
    # ------------------------------------------------------------------ #

    def reserve(self, route: Route) -> None:
        """Phase 1: lock the funds along the route (all-or-nothing)."""
        amounts = self._hop_amounts(route)
        locked: list[tuple[ChannelEdge, int]] = []
        try:
            for (u, v), amount in zip(self._hop_pairs(route), amounts):
                edge = self.channel(u, v)
                if edge is None or edge.available < amount:
                    raise PCNError(f"hop {u.hex()[:8]}->{v.hex()[:8]} lacks capacity")
                edge.reserved += amount
                locked.append((edge, amount))
        except PCNError:
            for edge, amount in locked:
                edge.reserved -= amount
            raise

    def settle(self, route: Route) -> None:
        """Phase 2: convert reservations into capacity movement."""
        for (u, v), amount in zip(self._hop_pairs(route), self._hop_amounts(route)):
            edge = self.channel(u, v)
            if edge is None or edge.reserved < amount:
                raise PCNError("settling an unreserved route")
            edge.reserved -= amount
            edge.capacity -= amount

    def abort(self, route: Route) -> None:
        """Release reservations without moving funds."""
        for (u, v), amount in zip(self._hop_pairs(route), self._hop_amounts(route)):
            edge = self.channel(u, v)
            if edge is not None and edge.reserved >= amount:
                edge.reserved -= amount

    def pay(self, src: Address, dst: Address, amount: int) -> Route:
        """Route + reserve + settle in one step."""
        route = self.find_route(src, dst, amount)
        self.reserve(route)
        self.settle(route)
        return route

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #

    @staticmethod
    def _hop_pairs(route: Route) -> list[tuple[Address, Address]]:
        return list(zip(route.hops[:-1], route.hops[1:]))

    def _hop_amounts(self, route: Route) -> list[int]:
        """Amount carried by each hop, first hop carries the most."""
        outstanding = route.amount
        reversed_amounts = []
        for u, v in reversed(self._hop_pairs(route)):
            reversed_amounts.append(outstanding)
            edge = self.channel(u, v)
            if edge is None:
                raise PCNError("route references a missing channel")
            if u != route.hops[0]:
                outstanding += edge.fee_for(outstanding)
        return list(reversed(reversed_amounts))
