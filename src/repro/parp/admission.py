"""Bounded admission for the serving path: queue accounting + load tracking.

The paper's server accepts unbounded work at static fees; past saturation
that collapses everyone's latency (the queue grows without bound, so every
response — including the ones that would have been fast — waits behind the
backlog).  This module gives :class:`~repro.parp.server.FullNodeServer` the
standard production alternative:

* a **virtual backlog** measured in request-cost units (a single proved
  query costs 1; batch items cost a fraction — they share signatures and a
  deduplicated multiproof).  Each admitted request pushes the server's
  ``busy_until`` horizon forward by ``cost × service_time``; the backlog at
  any instant is how far that horizon sits past "now".
* an **admission threshold**: when admitting a request would push the
  backlog past ``max_queue_cost`` units, the request is *shed* — the server
  answers with a signed :class:`~repro.parp.messages.OverloadedReply`
  instead of queueing it.  Shedding bounds the queueing delay of every
  admitted request by ``max_queue_cost × service_time``, which is what keeps
  p99 flat past saturation.
* a **load tracker**: EWMA of queue depth at admission and of the modeled
  serve delay, driving the load factor that both the
  :func:`~repro.parp.pricing.load_multiplier` fee curve and the
  ``load_info()`` probe report.
* a **jittered retry-after hint**: how long until enough backlog drains to
  fit the shed request, scattered ±``retry_jitter`` so the shed clients'
  retries do not re-arrive as one synchronized herd.

Everything is driven by the server's clock (the sim clock under
:class:`~repro.net.network.SimNetwork`, ``time.monotonic`` in-process), and
all state updates take an internal lock — concurrent sessions already hit
the serving path from interleaved events and threads.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass

from .pricing import DEFAULT_PRICING_CAP, DEFAULT_PRICING_KNEE, load_multiplier

__all__ = ["AdmissionConfig", "AdmissionDecision", "AdmissionController"]


@dataclass(frozen=True)
class AdmissionConfig:
    """Tuning knobs for one server's admission pipeline."""

    #: backlog bound in cost units; one unit ≈ one single proved query.
    #: Queueing delay of any admitted request ≤ max_queue_cost × service_time.
    max_queue_cost: float = 64.0
    #: modeled seconds of serving work per cost unit (calibrate to the
    #: hardware: proof generation dominates).
    service_time: float = 0.002
    #: marginal cost of each batch item after the first — batches amortize
    #: signature checks and share one deduplicated multiproof, so N batched
    #: queries cost the server far less than N separate requests.
    batch_item_cost: float = 0.25
    #: EWMA smoothing for the load/latency trackers (fraction of each new
    #: observation that replaces history).
    ewma_alpha: float = 0.2
    #: retry-after hints scatter uniformly in [1-j, 1+j] × the drain time.
    retry_jitter: float = 0.5
    #: pricing-curve knee/cap (see :func:`repro.parp.pricing.load_multiplier`).
    pricing_knee: float = DEFAULT_PRICING_KNEE
    pricing_cap: float = DEFAULT_PRICING_CAP
    #: seed for the deterministic retry-jitter stream (give each server its
    #: own so shed cohorts on different servers decorrelate).
    seed: int = 0


@dataclass(frozen=True)
class AdmissionDecision:
    """One request's verdict at the admission gate."""

    admitted: bool
    cost: float          # cost units this request carries
    load: float          # load factor at decision time (1.0 = queue full)
    queue_delay: float   # admitted: modeled queueing+service delay (seconds)
    retry_after: float   # shed: jittered drain-time hint (0 when admitted)


class AdmissionController:
    """Virtual-backlog admission gate + EWMA load tracker for one server."""

    def __init__(self, config: AdmissionConfig | None = None,
                 clock=None) -> None:
        self.config = config if config is not None else AdmissionConfig()
        #: callable returning seconds; sim clocks drop straight in.
        self._clock = clock if clock is not None else time.monotonic
        self._lock = threading.Lock()
        self._busy_until = float("-inf")   # horizon of committed work
        self._ewma_depth = 0.0             # cost units, sampled at offers
        self._ewma_delay = 0.0             # modeled serve delay, admitted reqs
        self._rng = random.Random(f"admission|{self.config.seed}")
        self.admitted = 0
        self.shed = 0

    # -- cost accounting ---------------------------------------------------- #

    def cost_of(self, queries: int) -> float:
        """Cost units of a request covering ``queries`` calls (1 for a
        single request; batches pay a marginal fraction per extra item)."""
        if queries <= 1:
            return 1.0
        return 1.0 + self.config.batch_item_cost * (queries - 1)

    # -- load inspection ---------------------------------------------------- #

    def _backlog_at(self, now: float) -> float:
        """Committed-but-unserved work, in cost units, at instant ``now``."""
        pending = max(0.0, self._busy_until - now)
        if self.config.service_time <= 0:
            return 0.0
        return pending / self.config.service_time

    def load_factor(self) -> float:
        """Instantaneous backlog / capacity, in [0, ~1]."""
        with self._lock:
            backlog = self._backlog_at(float(self._clock()))
        if self.config.max_queue_cost <= 0:
            return 1.0 if backlog > 0 else 0.0
        return min(1.0, backlog / self.config.max_queue_cost)

    def fee_multiplier(self) -> float:
        """Current quote multiplier from the load→fee curve."""
        return load_multiplier(self.load_factor(),
                               knee=self.config.pricing_knee,
                               cap=self.config.pricing_cap)

    def snapshot(self) -> dict:
        """The ``load_info()`` payload: load, EWMA trackers, counters."""
        with self._lock:
            now = float(self._clock())
            backlog = self._backlog_at(now)
            depth = self._ewma_depth
            delay = self._ewma_delay
            admitted, shed = self.admitted, self.shed
        capacity = self.config.max_queue_cost
        load = (min(1.0, backlog / capacity) if capacity > 0
                else (1.0 if backlog > 0 else 0.0))
        return {
            "load": load,
            "queue_depth": backlog,
            "ewma_queue_depth": depth,
            "ewma_serve_delay": delay,
            "fee_multiplier": load_multiplier(load,
                                              knee=self.config.pricing_knee,
                                              cap=self.config.pricing_cap),
            "max_queue_cost": capacity,
            "service_time": self.config.service_time,
            "admitted": admitted,
            "shed": shed,
        }

    # -- the gate ------------------------------------------------------------ #

    def offer(self, cost: float) -> AdmissionDecision:
        """Admit or shed a request of ``cost`` units, atomically.

        Admission commits the work: ``busy_until`` advances by the request's
        modeled service time, and the returned ``queue_delay`` — how long
        the request waits behind the backlog plus its own service — is what
        the transport uses to schedule the reply.  A shed leaves the backlog
        untouched and returns the jittered ``retry_after`` drain hint.
        """
        alpha = self.config.ewma_alpha
        with self._lock:
            now = float(self._clock())
            backlog = self._backlog_at(now)
            self._ewma_depth += alpha * (backlog - self._ewma_depth)
            capacity = self.config.max_queue_cost
            load = (min(1.0, backlog / capacity) if capacity > 0
                    else (1.0 if backlog > 0 else 0.0))
            if backlog + cost > capacity:
                self.shed += 1
                return AdmissionDecision(
                    admitted=False, cost=cost, load=load, queue_delay=0.0,
                    retry_after=self._retry_after(backlog, cost),
                )
            start = max(now, self._busy_until)
            self._busy_until = start + cost * self.config.service_time
            queue_delay = self._busy_until - now
            self._ewma_delay += alpha * (queue_delay - self._ewma_delay)
            self.admitted += 1
            return AdmissionDecision(
                admitted=True, cost=cost, load=load, queue_delay=queue_delay,
                retry_after=0.0,
            )

    def _retry_after(self, backlog: float, cost: float) -> float:
        """Jittered hint: time until ``cost`` units fit the queue again.

        Deterministic given the config seed and the call sequence — the
        bench and the e2e retry tests reproduce run-to-run.
        """
        need = backlog + cost - self.config.max_queue_cost
        base = max(need, 1.0) * self.config.service_time
        j = self.config.retry_jitter
        if not j:
            return base
        return base * (1.0 - j + 2.0 * j * self._rng.random())
