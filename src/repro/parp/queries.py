"""The verifiable-query catalog: one place that defines, for every supported
RPC method, how a full node *executes and proves* it and how a light client
(or the on-chain Fraud Detection Module) *verifies* the result.

Sharing this logic between the off-chain client checks (§V-D) and the
on-chain Algorithm 2 is what guarantees the two can never disagree about what
counts as fraud — a property the paper relies on ("the on-chain module can
use the request and response data to re-check all the conditions").

Supported methods and their proof obligations:

=============================== ============= =====================================
method                          trie          binding checked by verifiers
=============================== ============= =====================================
eth_getBalance(addr)            state @ m_B   result == proven account record
eth_getStorageAt(addr, slot)    state+storage account proof -> storage root -> slot
eth_getTransactionByBlockNumberAndIndex  txs  result tx == proven trie value
eth_sendRawTransaction(raw)     txs @ incl.   proven trie value == submitted raw tx
eth_getTransactionReceipt(hash) txs+receipts  tx at index hashes to request's hash
parp_updatesByRange(start, n)   headers       hash-linked page anchored to the
                                              local chain (self-certifying)
eth_blockNumber / eth_chainId / parp_channelStatus   (unverifiable; no proof)
=============================== ============= =====================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Protocol, Sequence

from ..chain.account import Account
from ..chain.block import Block, index_key
from ..chain.header import BlockHeader
from ..chain.state import StateDB
from ..crypto import keccak256
from ..rlp import codec as rlp
from ..trie.proof import ProofError, verify_proof
from .messages import MessageError, PARPResponse, RpcCall

__all__ = [
    "ChainBackend",
    "QueryError",
    "QueryFraud",
    "Unverifiable",
    "QuerySpec",
    "QUERY_CATALOG",
    "get_spec",
    "is_verifiable",
    "execute_query",
    "verify_query_result",
    "decode_balance",
    "decode_header_range",
    "decode_inclusion",
    "decode_int_result",
]

HeaderLookup = Callable[[int], Optional[BlockHeader]]


class QueryError(Exception):
    """The query cannot be executed (bad params, unknown data)."""


class QueryFraud(Exception):
    """Verification proved the response content wrong — slashing evidence."""


class Unverifiable(Exception):
    """The verifier lacks data (e.g. an unsynced header); cannot classify."""


class ChainBackend(Protocol):
    """What query execution needs from the serving full node's chain."""

    def head_number(self) -> int: ...
    def get_header(self, number: int) -> Optional[BlockHeader]: ...
    def state_at(self, number: int) -> StateDB: ...
    def get_block(self, number: int) -> Optional[Block]: ...
    def find_transaction(self, tx_hash: bytes) -> Optional[tuple[Block, int]]: ...
    def submit_transaction(self, raw: bytes) -> bytes: ...
    def ensure_mined(self, tx_hash: bytes) -> Optional[tuple[int, int]]: ...
    def chain_id(self) -> int: ...


@dataclass(frozen=True)
class QuerySpec:
    """Execution + verification behaviour of one RPC method."""

    method: str
    verifiable: bool
    #: (backend, call, m_b) -> (result_bytes, proof_nodes)
    execute: Callable[[ChainBackend, RpcCall, int], tuple[bytes, list[bytes]]]
    #: (call, response, header_lookup) -> None, raising QueryFraud/Unverifiable
    verify: Optional[Callable[[RpcCall, PARPResponse, HeaderLookup], None]] = None


# --------------------------------------------------------------------------- #
# eth_getBalance
# --------------------------------------------------------------------------- #

def _execute_get_balance(backend: ChainBackend, call: RpcCall,
                         m_b: int) -> tuple[bytes, list[bytes]]:
    from ..crypto.keys import Address

    address_raw = call.param_bytes(0, exact=20)
    state = backend.state_at(m_b)
    address = Address(address_raw)
    proof = state.prove_account(address)
    if state.account_exists(address):
        result = state.get_account(address).encode()
    else:
        result = b""
    return result, proof


def _verify_get_balance(call: RpcCall, response: PARPResponse,
                        get_header: HeaderLookup) -> None:
    address_raw = call.param_bytes(0, exact=20)
    header = get_header(response.m_b)
    if header is None:
        raise Unverifiable(f"no header for block {response.m_b}")
    try:
        proven = verify_proof(
            header.state_root, keccak256(address_raw), list(response.proof)
        )
    except ProofError as exc:
        raise QueryFraud(f"account proof does not verify: {exc}") from exc
    expected = proven if proven is not None else b""
    if response.result != expected:
        raise QueryFraud("returned account record differs from proven record")


def decode_balance(result: bytes) -> int:
    """Extract the balance from a getBalance result payload."""
    if result == b"":
        return 0
    return Account.decode(result).balance


# --------------------------------------------------------------------------- #
# eth_getStorageAt
# --------------------------------------------------------------------------- #

def _execute_get_storage(backend: ChainBackend, call: RpcCall,
                         m_b: int) -> tuple[bytes, list[bytes]]:
    from ..crypto.keys import Address

    address_raw = call.param_bytes(0, exact=20)
    slot = call.param_bytes(1, exact=32)
    state = backend.state_at(m_b)
    address = Address(address_raw)
    account_proof = state.prove_account(address)
    storage_proof = state.prove_storage(address, slot)
    account = state.get_account(address)
    value = state.get_storage(address, slot)
    result = rlp.encode([value, account.encode() if not account.is_empty else b""])
    return result, account_proof + storage_proof


def _verify_get_storage(call: RpcCall, response: PARPResponse,
                        get_header: HeaderLookup) -> None:
    address_raw = call.param_bytes(0, exact=20)
    slot = call.param_bytes(1, exact=32)
    header = get_header(response.m_b)
    if header is None:
        raise Unverifiable(f"no header for block {response.m_b}")
    payload = _decode_pair(response.result, "getStorageAt result")
    claimed_value, claimed_account = payload
    proof = list(response.proof)
    try:
        proven_account = verify_proof(
            header.state_root, keccak256(address_raw), proof
        )
    except ProofError as exc:
        raise QueryFraud(f"account proof does not verify: {exc}") from exc
    if (proven_account or b"") != claimed_account:
        raise QueryFraud("returned account record differs from proven record")
    if proven_account is None:
        if claimed_value != b"":
            raise QueryFraud("storage value claimed for a non-existent account")
        return
    account = Account.decode(proven_account)
    try:
        proven_value = verify_proof(account.storage_root, keccak256(slot), proof)
    except ProofError as exc:
        raise QueryFraud(f"storage proof does not verify: {exc}") from exc
    expected = b"" if proven_value is None else rlp.decode(proven_value)
    if claimed_value != expected:
        raise QueryFraud("returned storage value differs from proven value")


# --------------------------------------------------------------------------- #
# eth_getTransactionByBlockNumberAndIndex
# --------------------------------------------------------------------------- #

def _execute_get_tx_by_index(backend: ChainBackend, call: RpcCall,
                             m_b: int) -> tuple[bytes, list[bytes]]:
    from ..trie.proof import generate_proof

    number = call.param_int(0)
    index = call.param_int(1)
    block = backend.get_block(number)
    if block is None:
        raise QueryError(f"no block at height {number}")
    if index >= len(block.transactions):
        raise QueryError(f"block {number} has no transaction {index}")
    tx_bytes = block.transactions[index].encode()
    proof = generate_proof(block.transaction_trie, index_key(index))
    result = rlp.encode([rlp.encode_int(number), rlp.encode_int(index), tx_bytes])
    return result, proof


def _verify_get_tx_by_index(call: RpcCall, response: PARPResponse,
                            get_header: HeaderLookup) -> None:
    number = call.param_int(0)
    index = call.param_int(1)
    payload = _decode_triple(response.result, "transaction result")
    res_number, res_index, tx_bytes = payload
    if rlp.decode_int(res_number) != number or rlp.decode_int(res_index) != index:
        raise QueryFraud("result references a different block/index than requested")
    header = get_header(number)
    if header is None:
        raise Unverifiable(f"no header for block {number}")
    try:
        proven = verify_proof(
            header.transactions_root, index_key(index), list(response.proof)
        )
    except ProofError as exc:
        raise QueryFraud(f"transaction proof does not verify: {exc}") from exc
    if proven is None:
        raise QueryFraud("proof shows the transaction index is vacant")
    if proven != tx_bytes:
        raise QueryFraud("returned transaction differs from proven transaction")


# --------------------------------------------------------------------------- #
# eth_sendRawTransaction (the write workload)
# --------------------------------------------------------------------------- #

def _execute_send_raw_tx(backend: ChainBackend, call: RpcCall,
                         m_b: int) -> tuple[bytes, list[bytes]]:
    from ..trie.proof import generate_proof

    raw_tx = call.param_bytes(0)
    tx_hash = backend.submit_transaction(raw_tx)
    location = backend.ensure_mined(tx_hash)
    if location is None:
        # Pending: acknowledge without a proof (client re-queries later).
        return rlp.encode([b"", b"", tx_hash]), []
    number, index = location
    block = backend.get_block(number)
    if block is None:
        raise QueryError(f"inclusion block {number} disappeared")
    proof = generate_proof(block.transaction_trie, index_key(index))
    result = rlp.encode([rlp.encode_int(number), rlp.encode_int(index), tx_hash])
    return result, proof


def _verify_send_raw_tx(call: RpcCall, response: PARPResponse,
                        get_header: HeaderLookup) -> None:
    raw_tx = call.param_bytes(0)
    payload = _decode_triple(response.result, "sendRawTransaction result")
    res_number, res_index, tx_hash = payload
    if keccak256(raw_tx) != tx_hash:
        raise QueryFraud("acknowledged hash is not the hash of the submitted tx")
    if res_number == b"" and res_index == b"" and not response.proof:
        return  # pending acknowledgement: nothing provable yet
    number = rlp.decode_int(res_number)
    index = rlp.decode_int(res_index)
    header = get_header(number)
    if header is None:
        raise Unverifiable(f"no header for block {number}")
    try:
        proven = verify_proof(
            header.transactions_root, index_key(index), list(response.proof)
        )
    except ProofError as exc:
        raise QueryFraud(f"inclusion proof does not verify: {exc}") from exc
    if proven != raw_tx:
        raise QueryFraud("proof does not contain the submitted transaction")


# --------------------------------------------------------------------------- #
# eth_getTransactionReceipt
# --------------------------------------------------------------------------- #

def _execute_get_receipt(backend: ChainBackend, call: RpcCall,
                         m_b: int) -> tuple[bytes, list[bytes]]:
    from ..trie.proof import generate_proof

    tx_hash = call.param_bytes(0, exact=32)
    location = backend.find_transaction(tx_hash)
    if location is None:
        raise QueryError(f"unknown transaction {tx_hash.hex()}")
    block, index = location
    receipt = block.receipts[index]
    tx_proof = generate_proof(block.transaction_trie, index_key(index))
    receipt_proof = generate_proof(block.receipt_trie, index_key(index))
    result = rlp.encode([
        rlp.encode_int(block.number), rlp.encode_int(index), receipt.encode(),
    ])
    return result, tx_proof + receipt_proof


def _verify_get_receipt(call: RpcCall, response: PARPResponse,
                        get_header: HeaderLookup) -> None:
    tx_hash = call.param_bytes(0, exact=32)
    payload = _decode_triple(response.result, "receipt result")
    res_number, res_index, receipt_bytes = payload
    number = rlp.decode_int(res_number)
    index = rlp.decode_int(res_index)
    header = get_header(number)
    if header is None:
        raise Unverifiable(f"no header for block {number}")
    proof = list(response.proof)
    try:
        proven_tx = verify_proof(header.transactions_root, index_key(index), proof)
    except ProofError as exc:
        raise QueryFraud(f"transaction proof does not verify: {exc}") from exc
    if proven_tx is None or keccak256(proven_tx) != tx_hash:
        raise QueryFraud("transaction at claimed index has a different hash")
    try:
        proven_receipt = verify_proof(header.receipts_root, index_key(index), proof)
    except ProofError as exc:
        raise QueryFraud(f"receipt proof does not verify: {exc}") from exc
    if proven_receipt != receipt_bytes:
        raise QueryFraud("returned receipt differs from proven receipt")


def decode_inclusion(result: bytes) -> tuple[Optional[int], Optional[int], bytes]:
    """Parse a send/tx/receipt result into (block_number, index, payload)."""
    number_b, index_b, payload = _decode_triple(result, "inclusion result")
    if number_b == b"" and index_b == b"":
        return None, None, payload
    return rlp.decode_int(number_b), rlp.decode_int(index_b), payload


# --------------------------------------------------------------------------- #
# parp_updatesByRange (billable checkpoint sync, Altair UpdatesByRange analog)
# --------------------------------------------------------------------------- #

def _execute_updates_range(backend: ChainBackend, call: RpcCall,
                           m_b: int) -> tuple[bytes, list[bytes]]:
    from ..lightclient.checkpoint import MAX_UPDATE_PAGE

    start = call.param_int(0)
    count = call.param_int(1)
    if count < 1:
        raise QueryError("updates range needs a positive header count")
    stop = min(start + min(count, MAX_UPDATE_PAGE) - 1, backend.head_number())
    headers: list[bytes] = []
    for number in range(start, stop + 1):
        header = backend.get_header(number)
        if header is None:
            break
        headers.append(header.encode())
    if not headers:
        raise QueryError(f"no headers at or above height {start}")
    # No trie proof: the page certifies itself through hash linkage, which
    # the verifier anchors to the client's locally quorum-checked chain.
    return rlp.encode(headers), []


def _verify_updates_range(call: RpcCall, response: PARPResponse,
                          get_header: HeaderLookup) -> None:
    from ..lightclient.checkpoint import MAX_UPDATE_PAGE, RangeUpdate

    start = call.param_int(0)
    count = call.param_int(1)
    try:
        update = RangeUpdate.decode(response.result)
    except rlp.RLPError as exc:
        raise QueryFraud(f"malformed updates-range page: {exc}") from exc
    if update.start != start:
        raise QueryFraud("page starts at a different height than requested")
    if len(update) > min(count, MAX_UPDATE_PAGE):
        raise QueryFraud("page is longer than requested")
    if update.tip.number > response.m_b:
        raise QueryFraud("page extends past the server's attested head")
    if start > 0:
        anchor = get_header(start - 1)
        if anchor is None:
            raise Unverifiable(f"no local header {start - 1} to anchor the page")
        if update.headers[0].parent_hash != anchor.hash:
            raise QueryFraud("page does not link to the locally verified chain")
    # Any overlap with already-verified local headers must agree exactly.
    for header in update.headers:
        local = get_header(header.number)
        if local is not None and local.hash != header.hash:
            raise QueryFraud(
                f"page header {header.number} conflicts with the local chain"
            )


def decode_header_range(result: bytes) -> tuple[BlockHeader, ...]:
    """Parse a ``parp_updatesByRange`` result into its headers."""
    from ..lightclient.checkpoint import RangeUpdate

    try:
        return RangeUpdate.decode(result).headers
    except rlp.RLPError as exc:
        raise MessageError(f"malformed updates-range page: {exc}") from exc


# --------------------------------------------------------------------------- #
# Unverifiable queries
# --------------------------------------------------------------------------- #

def _execute_block_number(backend: ChainBackend, call: RpcCall,
                          m_b: int) -> tuple[bytes, list[bytes]]:
    return rlp.encode(rlp.encode_int(backend.head_number())), []


def _execute_chain_id(backend: ChainBackend, call: RpcCall,
                      m_b: int) -> tuple[bytes, list[bytes]]:
    return rlp.encode(rlp.encode_int(backend.chain_id())), []


def decode_int_result(result: bytes) -> int:
    item = rlp.decode(result)
    if not isinstance(item, bytes):
        raise MessageError("expected an integer result payload")
    return rlp.decode_int(item)


# --------------------------------------------------------------------------- #
# Catalog
# --------------------------------------------------------------------------- #

QUERY_CATALOG: dict[str, QuerySpec] = {
    "eth_getBalance": QuerySpec(
        "eth_getBalance", True, _execute_get_balance, _verify_get_balance),
    "eth_getStorageAt": QuerySpec(
        "eth_getStorageAt", True, _execute_get_storage, _verify_get_storage),
    "eth_getTransactionByBlockNumberAndIndex": QuerySpec(
        "eth_getTransactionByBlockNumberAndIndex", True,
        _execute_get_tx_by_index, _verify_get_tx_by_index),
    "eth_sendRawTransaction": QuerySpec(
        "eth_sendRawTransaction", True, _execute_send_raw_tx, _verify_send_raw_tx),
    "eth_getTransactionReceipt": QuerySpec(
        "eth_getTransactionReceipt", True, _execute_get_receipt, _verify_get_receipt),
    "parp_updatesByRange": QuerySpec(
        "parp_updatesByRange", True, _execute_updates_range,
        _verify_updates_range),
    "eth_blockNumber": QuerySpec("eth_blockNumber", False, _execute_block_number),
    "eth_chainId": QuerySpec("eth_chainId", False, _execute_chain_id),
}


def get_spec(method: str) -> QuerySpec:
    spec = QUERY_CATALOG.get(method)
    if spec is None:
        raise QueryError(f"unsupported RPC method {method!r}")
    return spec


def is_verifiable(method: str) -> bool:
    spec = QUERY_CATALOG.get(method)
    return spec is not None and spec.verifiable


def execute_query(backend: ChainBackend, call: RpcCall,
                  m_b: int) -> tuple[bytes, list[bytes]]:
    """Full-node side: produce (result, proof) for a call at height m_b."""
    return get_spec(call.method).execute(backend, call, m_b)


def verify_query_result(call: RpcCall, response: PARPResponse,
                        get_header: HeaderLookup) -> None:
    """Verifier side (light client *and* FDM): raise on provable fraud.

    Raises :class:`QueryFraud` when the proof/result pair is provably wrong,
    :class:`Unverifiable` when verification needs unavailable headers, and
    returns silently for valid or inherently unverifiable responses.
    """
    spec = QUERY_CATALOG.get(call.method)
    if spec is None or not spec.verifiable or spec.verify is None:
        return
    spec.verify(call, response, get_header)


# --------------------------------------------------------------------------- #
# small payload helpers
# --------------------------------------------------------------------------- #

def _decode_pair(raw: bytes, what: str) -> tuple[bytes, bytes]:
    item = rlp.decode(raw)
    if (not isinstance(item, list) or len(item) != 2
            or not all(isinstance(x, bytes) for x in item)):
        raise QueryFraud(f"malformed {what}")
    return item[0], item[1]


def _decode_triple(raw: bytes, what: str) -> tuple[bytes, bytes, bytes]:
    try:
        item = rlp.decode(raw)
    except rlp.RLPError as exc:
        raise QueryFraud(f"undecodable {what}: {exc}") from exc
    if (not isinstance(item, list) or len(item) != 3
            or not all(isinstance(x, bytes) for x in item)):
        raise QueryFraud(f"malformed {what}")
    return item[0], item[1], item[2]
