"""Misbehaving full nodes — failure injection for the accountability story.

The paper's security argument is that every way a full node can lie maps to
a classification (§IV-F): attributable lies are FRAUD (slashing evidence),
non-attributable garbage is INVALID (walk away).  This module implements a
malicious server for each row of that argument so tests, benchmarks, and
examples can exercise the full detection → witness → slash pipeline:

=====================  ==========================  =====================
attack                 what it forges              expected classification
=====================  ==========================  =====================
``inflate_balance``    account record in R(γ)      FRAUD (merkle-proof)
``bogus_proof``        Merkle proof nodes          FRAUD (merkle-proof)
``overcharge``         cumulative amount a         FRAUD (payment-amount)
``stale_height``       serves old state, m_B low   FRAUD (timestamp)
``wrong_signature``    σ_res by a different key    INVALID (response-signature)
``wrong_request_hash`` echoed h_req                INVALID (request-hash)
``wrong_channel``      α bound into h_res          INVALID (response-signature)
=====================  ==========================  =====================
"""

from __future__ import annotations

from typing import Optional

from ..chain.account import Account
from ..crypto.keys import PrivateKey
from ..rlp import codec as rlp
from .messages import PARPRequest, PARPResponse, ResponseStatus, response_digest
from .queries import execute_query
from .server import FullNodeServer

__all__ = ["ATTACKS", "MaliciousFullNodeServer"]

ATTACKS = (
    "inflate_balance",
    "bogus_proof",
    "overcharge",
    "stale_height",
    "wrong_signature",
    "wrong_request_hash",
    "wrong_channel",
)


class MaliciousFullNodeServer(FullNodeServer):
    """A PARP server that executes one configured attack per response.

    Everything else (handshake, channel accounting, payments) stays honest,
    isolating exactly one lie per response — the way the classification
    matrix is meant to be tested.
    """

    def __init__(self, *args, attack: str = "inflate_balance",
                 **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if attack not in ATTACKS:
            raise ValueError(f"unknown attack {attack!r}; pick one of {ATTACKS}")
        self.attack = attack
        self.attacks_launched = 0

    # The dispatcher: run the configured forgery instead of honest step (C).
    def _execute_and_sign(self, request: PARPRequest) -> PARPResponse:
        self.attacks_launched += 1
        forge = getattr(self, f"_attack_{self.attack}")
        return forge(request)

    # ------------------------------------------------------------------ #
    # Content fraud
    # ------------------------------------------------------------------ #

    def _attack_inflate_balance(self, request: PARPRequest) -> PARPResponse:
        """Return a doctored account record with 1000x the real balance,
        next to the *real* proof — the proof cannot cover the lie."""
        m_b = self.node.head_number()
        result, proof = execute_query(self.node, request.call, m_b)
        if request.call.method == "eth_getBalance" and result:
            account = Account.decode(result)
            doctored = account.with_balance(account.balance * 1000 + 1)
            result = doctored.encode()
        else:  # non-balance queries: flip bytes in the result payload
            result = bytes([result[0] ^ 0xFF]) + result[1:] if result else b"\x01"
        return PARPResponse.build(
            alpha=request.alpha, request=request, m_b=self.node.head_number(),
            result=result, proof=proof, key=self.key,
        )

    def _attack_bogus_proof(self, request: PARPRequest) -> PARPResponse:
        """Honest result, garbage proof (e.g. a lazy node serving cached
        data it can no longer prove)."""
        m_b = self.node.head_number()
        result, proof = execute_query(self.node, request.call, m_b)
        bogus = [node[::-1] for node in proof] or [b"\xde\xad\xbe\xef" * 8]
        return PARPResponse.build(
            alpha=request.alpha, request=request, m_b=self.node.head_number(),
            result=result, proof=bogus, key=self.key,
        )

    # ------------------------------------------------------------------ #
    # Payment fraud
    # ------------------------------------------------------------------ #

    def _attack_overcharge(self, request: PARPRequest) -> PARPResponse:
        """Acknowledge a higher cumulative amount than the client signed."""
        m_b = self.node.head_number()
        result, proof = execute_query(self.node, request.call, m_b)
        inflated = request.a + 10 ** 9
        return _sign_response(
            self.key, request.alpha, request, m_b=self.node.head_number(),
            amount=inflated, result=result, proof=proof,
        )

    # ------------------------------------------------------------------ #
    # Staleness fraud
    # ------------------------------------------------------------------ #

    def _attack_stale_height(self, request: PARPRequest) -> PARPResponse:
        """Serve consistent-but-outdated state: proof and result are valid
        against an *old* block, and m_B honestly says so — but m_B is below
        the height the client pinned, which §V-D defines as fraud."""
        pinned = self.node.chain.get_block_by_hash(request.h_b)
        stale = max(0, (pinned.number if pinned else self.node.head_number()) - 2)
        result, proof = execute_query(self.node, request.call, stale)
        return PARPResponse.build(
            alpha=request.alpha, request=request, m_b=stale,
            result=result, proof=proof, key=self.key,
        )

    # ------------------------------------------------------------------ #
    # Non-attributable garbage (INVALID, not slashable)
    # ------------------------------------------------------------------ #

    def _attack_wrong_signature(self, request: PARPRequest) -> PARPResponse:
        """Sign with a throwaway key — unattributable, hence merely invalid."""
        m_b = self.node.head_number()
        result, proof = execute_query(self.node, request.call, m_b)
        rogue = PrivateKey.from_seed(b"rogue-signer")
        return PARPResponse.build(
            alpha=request.alpha, request=request, m_b=m_b,
            result=result, proof=proof, key=rogue,
        )

    def _attack_wrong_request_hash(self, request: PARPRequest) -> PARPResponse:
        """Echo a corrupted request hash, unlinking response from request."""
        m_b = self.node.head_number()
        result, proof = execute_query(self.node, request.call, m_b)
        honest = PARPResponse.build(
            alpha=request.alpha, request=request, m_b=m_b,
            result=result, proof=proof, key=self.key,
        )
        corrupted = bytes([honest.h_req[0] ^ 0x01]) + honest.h_req[1:]
        return PARPResponse(
            status=honest.status, m_b=honest.m_b, a=honest.a,
            result=honest.result, proof=honest.proof, h_req=corrupted,
            sig_req=honest.sig_req, sig_res=honest.sig_res,
        )

    def _attack_wrong_channel(self, request: PARPRequest) -> PARPResponse:
        """Bind the signature to a different channel id."""
        m_b = self.node.head_number()
        result, proof = execute_query(self.node, request.call, m_b)
        foreign_alpha = bytes(16)
        return _sign_response(
            self.key, foreign_alpha, request, m_b=m_b,
            amount=request.a, result=result, proof=proof,
        )


def _sign_response(key: PrivateKey, alpha: bytes, request: PARPRequest,
                   m_b: int, amount: int, result: bytes,
                   proof: list[bytes],
                   status: int = ResponseStatus.OK) -> PARPResponse:
    """Build a response with arbitrary (possibly inconsistent) fields but a
    *correct* signature over them — the attacker signs its own lie."""
    payload = rlp.encode([result, list(proof)])
    digest = response_digest(
        alpha, status, m_b, amount, payload, request.h_req, request.sig_req,
    )
    return PARPResponse(
        status=status, m_b=m_b, a=amount, result=result, proof=tuple(proof),
        h_req=request.h_req, sig_req=request.sig_req,
        sig_res=key.sign(digest).to_bytes(),
    )
