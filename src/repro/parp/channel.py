"""Off-chain payment-channel state, tracked by both parties.

Paper §V-A: "The channel state of a P stored locally by LC and FN are the
values of α, a and σ_a exchanged in each round."  The light client tracks
how much of its budget it has signed away; the full node retains the highest
cumulative amount and its signature — that pair is money: it is what the FN
submits to the CMM to redeem its earnings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..crypto import Signature, SignatureError, recover_address
from ..crypto.keys import Address
from .constants import ALPHA_BYTES, MAX_AMOUNT
from .messages import PARPRequest, payment_digest

__all__ = ["ChannelError", "ClientChannel", "ServerChannel"]


class ChannelError(Exception):
    """Raised on channel accounting violations."""


@dataclass
class ClientChannel:
    """Light-client-side view of one payment channel."""

    alpha: bytes
    full_node: Address
    budget: int
    spent: int = 0                      # latest cumulative amount a signed
    acked: int = 0                      # highest amount a *verified* response covered
    requests_sent: int = 0

    def __post_init__(self) -> None:
        if len(self.alpha) != ALPHA_BYTES:
            raise ChannelError(f"channel id must be {ALPHA_BYTES} bytes")
        if not 0 < self.budget <= MAX_AMOUNT:
            raise ChannelError("channel budget out of range")

    @property
    def remaining(self) -> int:
        return self.budget - self.spent

    def next_amount(self, price: int) -> int:
        """Cumulative amount for the next request costing ``price``."""
        if price < 0:
            raise ChannelError("negative price")
        amount = self.spent + price
        if amount > self.budget:
            raise ChannelError(
                f"budget exhausted: {self.spent} spent + {price} > {self.budget}"
            )
        return amount

    def record_request(self, amount: int) -> None:
        """Commit to a signed cumulative amount (monotone by construction)."""
        if amount < self.spent:
            raise ChannelError("cumulative amount may never decrease")
        if amount > self.budget:
            raise ChannelError("cumulative amount exceeds budget")
        self.spent = amount
        self.requests_sent += 1

    def record_ack(self, amount: int) -> None:
        """Bank a verified response covering cumulative amount ``amount``.

        ``acked`` is what closing the channel should concede: a payment whose
        request died in transit was signed (``spent``) but never served, and
        the client must not volunteer it at closure — if the server *did*
        receive it, the dispute window lets the server counter with its
        higher σ_a, so closing at ``acked`` is both minimal and safe.
        """
        if amount > self.spent:
            raise ChannelError("cannot acknowledge more than was signed")
        if amount > self.acked:
            self.acked = amount


@dataclass
class ServerChannel:
    """Full-node-side view of one payment channel.

    ``latest_amount``/``latest_sig`` form the redeemable payment proof; the
    node must keep the *highest* one it has seen (paper §IV-E.3: "each
    request contains a signed cumulative payment amount that enables the
    full node to redeem these funds").
    """

    alpha: bytes
    light_client: Address
    budget: int
    latest_amount: int = 0
    latest_sig: Optional[bytes] = None
    requests_served: int = 0
    #: individual queries answered — a batch of N counts N here but only one
    #: ``requests_served`` channel update (the batched-serving economy).
    queries_served: int = 0
    closed: bool = False

    def accept_request_payment(self, request: PARPRequest,
                               min_increment: int, queries: int = 1) -> None:
        """Validate the payment carried by a request, then bank it.

        Checks (server step (B)): channel match, monotone cumulative amount
        covering the fee, within budget, and a payment signature that
        recovers to the channel's light client.  ``queries`` is how many
        individual queries this one channel update pays for (N for a batch);
        any request-shaped message carrying (α, a, σ_a) is accepted, so
        :class:`~repro.parp.messages.BatchRequest` banks the same way.
        """
        if self.closed:
            raise ChannelError("channel is closed")
        if request.alpha != self.alpha:
            raise ChannelError("request targets a different channel")
        if request.a < self.latest_amount + min_increment:
            raise ChannelError(
                f"insufficient payment: cumulative {request.a} < "
                f"{self.latest_amount} + fee {min_increment}"
            )
        if request.a > self.budget:
            raise ChannelError("cumulative amount exceeds channel budget")
        try:
            signer = recover_address(
                payment_digest(self.alpha, request.a),
                Signature.from_bytes(request.sig_a),
            )
        except (SignatureError, ValueError) as exc:
            raise ChannelError(f"bad payment signature: {exc}") from exc
        if signer != self.light_client:
            raise ChannelError("payment not signed by the channel's light client")
        self.latest_amount = request.a
        self.latest_sig = request.sig_a
        self.requests_served += 1
        self.queries_served += queries

    @property
    def earned(self) -> int:
        """What the node can redeem right now."""
        return self.latest_amount

    def redeemable_state(self) -> tuple[bytes, int, bytes]:
        """(α, a, σ_a) — the arguments of a CloseChannel transaction."""
        if self.latest_sig is None:
            return self.alpha, 0, b""
        return self.alpha, self.latest_amount, self.latest_sig
