"""The server marketplace: discovery, selection, and mid-query failover.

The paper's Table I traffic analysis shows what dApps actually face: a
*market* of providers (Infura 47.5%, Alchemy 31.1%, …) with different price
schedules and different trustworthiness.  PARP makes switching providers
free of sign-up friction; this module supplies the missing client machinery:

* :class:`Marketplace` — a directory where staked full nodes advertise
  (address, endpoint, fee schedule, batch protocol version);
* :class:`MarketplaceClient` — wraps one :class:`LightClientSession` per
  provider, keeps ≥2 channels warm, and routes every query to the best
  server under a **reputation × price** score (the §VIII
  :class:`~repro.parp.reputation.ReputationLedger` finally wired into
  selection);
* **failover**: on an invalid response, a timeout, or a batch-version
  mismatch the client records the reputation event, re-issues the identical
  query to the next-ranked server, and — when the response is provable
  fraud — escalates through a witness to the on-chain slash flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Any, Optional, Sequence

from ..crypto.keys import Address, PrivateKey
from ..lightclient.sync import HeaderSyncer
from .client import (
    DEFAULT_GAS_PRICE,
    BatchOutcome,
    FraudDetected,
    InvalidResponse,
    LightClientSession,
    RequestOutcome,
    ServerEndpoint,
    SessionError,
)
from .constants import (
    BATCH_PROTOCOL_VERSION,
    DEFAULT_CHANNEL_BUDGET,
    DEFAULT_MIN_SESSIONS,
    DEFAULT_SELECTION_THRESHOLD,
    MAX_AMOUNT,
)
from .fraudproof import FraudProofError
from .messages import RpcCall
from .pricing import FeeSchedule
from .queries import decode_balance
from .reputation import (
    EVENT_CHANNEL_SETTLED,
    EVENT_FRAUD_DETECTED,
    EVENT_FRAUD_SLASHED,
    EVENT_INVALID_RESPONSE,
    EVENT_SERVED_OK,
    EVENT_TIMEOUT,
    EVENT_VERSION_MISMATCH,
    ReputationLedger,
)
from .states import LightClientState

__all__ = [
    "MarketplaceError",
    "ServerAdvertisement",
    "Marketplace",
    "MarketplaceStats",
    "MarketplaceClient",
]


class MarketplaceError(Exception):
    """No eligible server could (be made to) answer."""

    def __init__(self, message: str, attempts: Sequence[str] = ()) -> None:
        if attempts:
            message = f"{message}: " + "; ".join(attempts)
        super().__init__(message)
        self.attempts = tuple(attempts)


@dataclass(frozen=True)
class ServerAdvertisement:
    """What a full node publishes to the directory.

    ``endpoint`` is how a client reaches the server — the in-process
    :class:`~repro.parp.server.FullNodeServer` itself, or a
    :class:`~repro.net.transport.SimEndpoint` over the simulated network.
    """

    address: Address
    endpoint: ServerEndpoint
    fee_schedule: FeeSchedule
    batch_version: Optional[int] = None
    name: str = ""

    @classmethod
    def for_server(cls, server: Any, name: str = "",
                   endpoint: Optional[ServerEndpoint] = None,
                   ) -> "ServerAdvertisement":
        """Build an advertisement straight from a :class:`FullNodeServer`."""
        return cls(
            address=server.address,
            endpoint=endpoint if endpoint is not None else server,
            fee_schedule=server.fee_schedule,
            batch_version=server.batch_protocol_version(),
            name=name or getattr(getattr(server, "node", None), "name", ""),
        )

    @cached_property
    def reference_price(self) -> int:
        """Sticker price of the standard call basket (see pricing).

        Cached: the advertisement is frozen, and selection reads this for
        every candidate on every routed query.
        """
        return self.fee_schedule.reference_price()

    @property
    def speaks_batch(self) -> bool:
        return self.batch_version == BATCH_PROTOCOL_VERSION

    @property
    def label(self) -> str:
        return self.name or self.address.hex()[:10]


class Marketplace:
    """The directory full nodes advertise in and clients select from."""

    def __init__(self) -> None:
        self._ads: dict[Address, ServerAdvertisement] = {}

    def advertise(self, ad: ServerAdvertisement) -> None:
        """Publish (or refresh) one server's advertisement."""
        self._ads[ad.address] = ad

    def advertise_server(self, server: Any, name: str = "",
                         endpoint: Optional[ServerEndpoint] = None,
                         ) -> ServerAdvertisement:
        ad = ServerAdvertisement.for_server(server, name=name, endpoint=endpoint)
        self.advertise(ad)
        return ad

    def withdraw(self, address: Address) -> None:
        self._ads.pop(address, None)

    def get(self, address: Address) -> Optional[ServerAdvertisement]:
        return self._ads.get(address)

    def advertisements(self) -> list[ServerAdvertisement]:
        return list(self._ads.values())

    def __len__(self) -> int:
        return len(self._ads)

    def __contains__(self, address: Address) -> bool:
        return address in self._ads


@dataclass
class MarketplaceStats:
    """What the routing layer did on the client's behalf."""

    queries: int = 0              # queries answered (after any failover)
    failovers: int = 0            # re-issues to another server
    sessions_opened: int = 0
    frauds_detected: int = 0
    frauds_slashed: int = 0
    version_mismatches: int = 0


#: consecutive transport timeouts before a server is demoted to last resort.
COLD_AFTER = 2


class MarketplaceClient:
    """A light client that shops the marketplace instead of trusting one node.

    Selection score: ``reputation(score) × (cheapest reference price /
    server's reference price)`` — trust weighted by how competitively the
    server prices the standard call basket.  Servers that are banned or
    score below ``selection_threshold`` are never used.
    """

    def __init__(self, key: PrivateKey, marketplace: Marketplace,
                 reputation: Optional[ReputationLedger] = None,
                 witness: Optional[Any] = None,
                 headers: Optional[HeaderSyncer] = None,
                 clock=None,
                 budget: int = DEFAULT_CHANNEL_BUDGET,
                 min_sessions: int = DEFAULT_MIN_SESSIONS,
                 selection_threshold: float = DEFAULT_SELECTION_THRESHOLD,
                 gas_price: int = DEFAULT_GAS_PRICE) -> None:
        if not 0 < budget <= MAX_AMOUNT:
            # a bad budget would fail identically against every server; catch
            # it here so no server is blamed (and banned) for a client bug
            raise MarketplaceError(f"channel budget {budget} out of range")
        self.key = key
        self.marketplace = marketplace
        self.reputation = reputation if reputation is not None else ReputationLedger()
        self.witness = witness              # anything with .submit(package)
        self.budget = budget
        self.min_sessions = max(1, min_sessions)
        self.selection_threshold = selection_threshold
        self.gas_price = gas_price
        self.sessions: dict[Address, LightClientSession] = {}
        #: sessions dropped after misbehavior, kept so their channels' α and
        #: acked amounts survive for settlement (escrow is money)
        self.retired: list[tuple[Address, LightClientSession]] = []
        self.stats = MarketplaceStats()
        self._headers = headers
        self._clock = clock
        self._ticks = 0.0
        self._mismatch_noted: set[Address] = set()
        #: consecutive transport failures per server; at COLD_AFTER the
        #: server drops to the back of the ranking so retries stop signing
        #: payments into a channel nobody is answering
        self._cold: dict[Address, int] = {}

    @property
    def address(self) -> Address:
        return self.key.address

    @property
    def headers(self) -> HeaderSyncer:
        """One shared header chain for all sessions (headers are free and
        multi-source, so every advertised endpoint is a source)."""
        if self._headers is None:
            ads = self.marketplace.advertisements()
            if not ads:
                raise MarketplaceError("cannot sync headers: empty marketplace")
            self._headers = HeaderSyncer([ad.endpoint for ad in ads])
        return self._headers

    def _now(self) -> float:
        if self._clock is not None:
            return float(self._clock())
        self._ticks += 1.0          # deterministic logical time
        return self._ticks

    # ------------------------------------------------------------------ #
    # Selection
    # ------------------------------------------------------------------ #

    def trust(self, address: Address, now: Optional[float] = None) -> float:
        """The ledger score with a newcomer floor for positive histories.

        A server with net-positive evidence must never rank below a total
        stranger (the raw ledger score dips under ``newcomer_score`` until
        ~``saturation`` successes accumulate); negative evidence, however,
        is taken at face value — that is what collapses below the selection
        threshold and gets a server routed around.
        """
        if now is None:
            now = self._now()
        score = self.reputation.score(address, now)
        if (self.reputation.events_of(address)
                and self.reputation.raw_score(address, now) > 0.0):
            return max(score, self.reputation.newcomer_score)
        return score

    def selection_score(self, ad: ServerAdvertisement,
                        now: Optional[float] = None) -> float:
        """Reputation-weighted, price-aware score in [0, 1]."""
        if now is None:
            now = self._now()
        if self.reputation.is_banned(ad.address, now):
            return 0.0
        ads = self.marketplace.advertisements() or [ad]
        cheapest = min(max(1, a.reference_price) for a in ads)
        return self.trust(ad.address, now) * (cheapest / max(1, ad.reference_price))

    def eligible(self, now: Optional[float] = None) -> list[ServerAdvertisement]:
        """Advertisements ranked best-first by the combined score.

        Eligibility gates on *trust alone* — banned servers and those whose
        reputation score fell below ``selection_threshold`` are dropped; the
        price factor then only decides the order among trusted servers (a
        bargain price must never buy back a burned reputation).
        """
        if now is None:
            now = self._now()
        ads = self.marketplace.advertisements()
        cheapest = min((max(1, a.reference_price) for a in ads), default=1)
        keep = []
        for ad in ads:
            if self.reputation.is_banned(ad.address, now):
                continue
            trust = self.trust(ad.address, now)
            if trust < self.selection_threshold:
                continue
            keep.append((trust * (cheapest / max(1, ad.reference_price)), ad))
        # cold (repeatedly unreachable) servers sink to last resort; among
        # the rest: score, then cheaper, then demonstrated history over a
        # stranger, then a stable label order so routing is deterministic.
        keep.sort(key=lambda pair: (
            self._cold.get(pair[1].address, 0) >= COLD_AFTER,
            -pair[0], pair[1].reference_price,
            -self.reputation.raw_score(pair[1].address, now), pair[1].label,
        ))
        return [ad for _, ad in keep]

    # ------------------------------------------------------------------ #
    # Channel management
    # ------------------------------------------------------------------ #

    def bonded_sessions(self) -> dict[Address, LightClientSession]:
        return {a: s for a, s in self.sessions.items()
                if s.state is LightClientState.BONDED}

    def connect(self, min_sessions: Optional[int] = None) -> list[Address]:
        """Open channels to the ``min_sessions`` best-ranked servers.

        Servers that fail to connect get a timeout event and are skipped.
        Raises :class:`MarketplaceError` when not even one channel opens.
        """
        want = min_sessions if min_sessions is not None else self.min_sessions
        attempts: list[str] = []
        for ad in self.eligible():
            if len(self.bonded_sessions()) >= want:
                break
            if ad.address in self.bonded_sessions():
                continue
            try:
                self._open_session(ad)
            except SessionError as exc:
                # client-side lifecycle/budget problem: the server did not
                # misbehave, so no reputation penalty
                attempts.append(f"{ad.label}: {exc}")
            except Exception as exc:  # noqa: BLE001 — any connect failure ⇒ next server
                self.reputation.record(ad.address, EVENT_TIMEOUT, self._now())
                attempts.append(f"{ad.label}: {exc}")
        opened = self.bonded_sessions()
        if not opened:
            raise MarketplaceError("could not bond to any server", attempts)
        return list(opened)

    def _open_session(self, ad: ServerAdvertisement) -> LightClientSession:
        session = LightClientSession(
            self.key, ad.endpoint, self.headers,
            fee_schedule=ad.fee_schedule, gas_price=self.gas_price,
            clock=self._clock,
        )
        session.connect(budget=self.budget)
        self.sessions[ad.address] = session
        self.stats.sessions_opened += 1
        return session

    def _session_for(self, ad: ServerAdvertisement) -> LightClientSession:
        session = self.sessions.get(ad.address)
        if session is not None and session.state is LightClientState.BONDED:
            return session
        return self._open_session(ad)

    def _retire_session(self, address: Address) -> None:
        """Stop using a session but keep it: its channel's α and acked
        amount are needed to settle the escrowed budget later."""
        session = self.sessions.pop(address, None)
        if session is not None:
            self.retired.append((address, session))

    def _replenish(self) -> None:
        """Best-effort: restore the warm-standby invariant after a drop."""
        try:
            if len(self.bonded_sessions()) < self.min_sessions:
                self.connect()
        except MarketplaceError:
            pass  # a later query will surface the exhaustion with context

    # ------------------------------------------------------------------ #
    # The routed request path
    # ------------------------------------------------------------------ #

    def request(self, method: str, *params: Any, tip: int = 0) -> RequestOutcome:
        """One verified query, served by whichever server survives routing."""
        call = RpcCall.create(method, *params)
        return self.request_call(call, tip=tip)

    def request_call(self, call: RpcCall, tip: int = 0) -> RequestOutcome:
        return self._serve(lambda s: s.request_call(call, tip=tip),
                           describe=call.method)

    def query_batch(self, calls: Sequence[RpcCall], tip: int = 0) -> BatchOutcome:
        """A batched query, routed to batch-speaking servers first."""
        calls = tuple(calls)
        return self._serve(lambda s: s.query_batch(calls, tip=tip),
                           describe=f"batch[{len(calls)}]", want_batch=True)

    def _serve(self, issue, describe: str, want_batch: bool = False):
        tried: set[Address] = set()
        attempts: list[str] = []
        while True:
            ad = self._next_candidate(tried, want_batch)
            if ad is None:
                raise MarketplaceError(
                    f"{describe}: every eligible server failed", attempts,
                )
            tried.add(ad.address)
            try:
                session = self._session_for(ad)
            except SessionError as exc:
                attempts.append(f"{ad.label}: connect: {exc}")  # client-side
                self.stats.failovers += 1
                continue
            except Exception as exc:  # noqa: BLE001 — connect failure ⇒ failover
                self.reputation.record(ad.address, EVENT_TIMEOUT, self._now())
                attempts.append(f"{ad.label}: connect: {exc}")
                self.stats.failovers += 1
                continue
            if want_batch and not session.batch_supported():
                self._note_version_mismatch(ad)
            try:
                outcome = issue(session)
            except FraudDetected as exc:
                self._on_fraud(ad, exc)
                attempts.append(f"{ad.label}: fraud [{exc.report.check}]")
                self.stats.failovers += 1
                self._replenish()
                continue
            except InvalidResponse as exc:
                if exc.report.check == "transport":
                    kind = EVENT_TIMEOUT       # silent/dead/partitioned server
                    self._cold[ad.address] = self._cold.get(ad.address, 0) + 1
                else:
                    kind = EVENT_INVALID_RESPONSE
                    self._retire_session(ad.address)  # §IV-F: terminate
                self.reputation.record(ad.address, kind, self._now())
                attempts.append(f"{ad.label}: {kind} [{exc.report.check}]")
                self.stats.failovers += 1
                continue
            except SessionError as exc:
                # local condition (most commonly: this channel's budget is
                # exhausted) — not the server's fault; just route elsewhere
                attempts.append(f"{ad.label}: session: {exc}")
                self.stats.failovers += 1
                continue
            self._cold.pop(ad.address, None)
            self.reputation.record(ad.address, EVENT_SERVED_OK, self._now())
            self.stats.queries += 1
            return outcome

    def _next_candidate(self, tried: set[Address],
                        want_batch: bool) -> Optional[ServerAdvertisement]:
        ranked = [ad for ad in self.eligible() if ad.address not in tried]
        if not ranked:
            return None
        if want_batch:
            for ad in ranked:
                if ad.speaks_batch:
                    return ad
            # no batch speaker left: per-key fallback on the best remaining
        return ranked[0]

    def _note_version_mismatch(self, ad: ServerAdvertisement) -> None:
        """Record (once per server) that it cannot serve our batch version."""
        if ad.address in self._mismatch_noted:
            return
        self._mismatch_noted.add(ad.address)
        self.stats.version_mismatches += 1
        self.reputation.record(ad.address, EVENT_VERSION_MISMATCH, self._now())

    def _on_fraud(self, ad: ServerAdvertisement, exc: FraudDetected) -> None:
        """Escalate provable fraud: witness submission → on-chain slash."""
        self.stats.frauds_detected += 1
        self._retire_session(ad.address)
        kind = EVENT_FRAUD_DETECTED
        if exc.package is not None and self.witness is not None:
            try:
                self.witness.submit(exc.package)
                self.stats.frauds_slashed += 1
                kind = EVENT_FRAUD_SLASHED
            except FraudProofError:
                pass  # evidence did not stick on-chain; local penalty stands
        self.reputation.record(ad.address, kind, self._now())

    # ------------------------------------------------------------------ #
    # Typed conveniences (mirror LightClientSession's)
    # ------------------------------------------------------------------ #

    def get_balance(self, address: Address) -> int:
        outcome = self.request("eth_getBalance", address)
        return decode_balance(outcome.response.result)

    def get_balances(self, addresses: Sequence[Address]) -> list[int]:
        calls = [RpcCall.create("eth_getBalance", a) for a in addresses]
        outcome = self.query_batch(calls)
        balances = []
        for item in outcome.items:
            if not item.ok:
                raise MarketplaceError(
                    f"balance query failed for {item.call.params[0].hex()}"
                )
            balances.append(decode_balance(item.result))
        return balances

    # ------------------------------------------------------------------ #
    # Settlement
    # ------------------------------------------------------------------ #

    def close_all(self) -> dict[Address, bytes]:
        """Cooperatively close every bonded channel; returns close-tx hashes.

        Retired channels (dropped after misbehavior but still open on-chain)
        are settled too — at their *acked* amount, relayed through a server
        we still trust when one is bonded, since the retired server's word
        is exactly what we stopped taking.  A server that no longer answers
        keeps its channel open (the on-chain dispute path still protects the
        funds); everyone that settles cleanly gets a ``channel_settled``
        reputation credit.
        """
        hashes: dict[Address, bytes] = {}
        bonded = list(self.bonded_sessions().items())
        relay = bonded[0][1].endpoint if bonded else None
        settlable = [(a, s, True) for a, s in bonded] + [
            (address, session, False) for address, session in self.retired
            if session.state is LightClientState.BONDED
        ]
        for address, session, in_good_standing in settlable:
            trusted_relay = relay if session.endpoint is not relay else None
            try:
                hashes[address] = session.close(relay=trusted_relay)
            except Exception:  # noqa: BLE001 — unreachable server: leave open
                self.reputation.record(address, EVENT_TIMEOUT, self._now())
                continue
            if in_good_standing:  # no settlement credit for retired servers
                self.reputation.record(address, EVENT_CHANNEL_SETTLED,
                                       self._now())
        return hashes

    def __repr__(self) -> str:
        return (
            f"MarketplaceClient(addr={self.address.hex()[:10]}…, "
            f"sessions={len(self.bonded_sessions())}/{len(self.marketplace)}, "
            f"queries={self.stats.queries}, failovers={self.stats.failovers})"
        )
