"""The server marketplace: discovery, selection, and mid-query failover.

The paper's Table I traffic analysis shows what dApps actually face: a
*market* of providers (Infura 47.5%, Alchemy 31.1%, …) with different price
schedules and different trustworthiness.  PARP makes switching providers
free of sign-up friction; this module supplies the missing client machinery:

* :class:`Marketplace` — a directory where staked full nodes advertise
  (address, endpoint, fee schedule, batch protocol version);
* :class:`MarketplaceClient` — wraps one :class:`LightClientSession` per
  provider, keeps ≥2 channels warm, and routes every query to the best
  server under a **reputation × price** score (the §VIII
  :class:`~repro.parp.reputation.ReputationLedger` finally wired into
  selection);
* **failover**: on an invalid response, a timeout, or a batch-version
  mismatch the client records the reputation event, re-issues the identical
  query to the next-ranked server, and — when the response is provable
  fraud — escalates through a witness to the on-chain slash flow;
* **sharded serving**: advertisements carry an optional
  :class:`~repro.trie.shard.ShardRange`; selection becomes range-aware
  (a server is only ever asked for keys inside its advertised slice) and
  :meth:`MarketplaceClient.query_sharded` scatters a batch across shard
  legs, hedges each leg independently, and stitches the verified
  per-shard multiproof results back into request order.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import cached_property
from typing import Any, Optional, Sequence

from ..crypto.keys import Address, PrivateKey
from ..lightclient.checkpoint import Checkpoint, CheckpointSyncer
from ..lightclient.sync import HeaderSyncer
from ..net.futures import DEFAULT_TIMEOUT, ExponentialBackoff, wait_any
from ..trie.shard import ShardRange
from .client import (
    DEFAULT_GAS_PRICE,
    BatchItem,
    BatchOutcome,
    FraudDetected,
    InvalidResponse,
    LightClientSession,
    PendingBatch,
    PendingRequest,
    RequestOutcome,
    ServerEndpoint,
    ServerOverloaded,
    SessionError,
)
from .constants import (
    BATCH_PROTOCOL_VERSION,
    DEFAULT_CHANNEL_BUDGET,
    DEFAULT_MIN_SESSIONS,
    DEFAULT_SELECTION_THRESHOLD,
    MAX_AMOUNT,
)
from .fraudproof import FraudProofError
from .messages import RpcCall
from .pricing import FeeSchedule
from .queries import decode_balance
from .sharding import shard_key_of_call
from .verification import ResponseClass, VerificationReport
from .reputation import (
    EVENT_CHANNEL_SETTLED,
    EVENT_EQUIVOCATION,
    EVENT_FRAUD_DETECTED,
    EVENT_FRAUD_SLASHED,
    EVENT_INVALID_RESPONSE,
    EVENT_OVERLOADED,
    EVENT_SERVED_OK,
    EVENT_TIMEOUT,
    EVENT_VERSION_MISMATCH,
    ReputationLedger,
)
from .states import LightClientState

__all__ = [
    "MarketplaceError",
    "NoServerForKey",
    "ServerAdvertisement",
    "Marketplace",
    "MarketplaceStats",
    "HedgeAttempt",
    "ShardLeg",
    "ScatterOutcome",
    "ShardScatterError",
    "MarketplaceClient",
]


class MarketplaceError(Exception):
    """No eligible server could (be made to) answer."""

    def __init__(self, message: str, attempts: Sequence[str] = ()) -> None:
        if attempts:
            message = f"{message}: " + "; ".join(attempts)
        super().__init__(message)
        self.attempts = tuple(attempts)


class NoServerForKey(MarketplaceError):
    """A state-keyed call's trie key is covered by no advertised server.

    Raised *before* any payment is signed: a silent empty result would be
    indistinguishable from a provable (and payable) "account absent"
    answer, so a shard-coverage hole in the directory must surface as a
    typed client-side error instead.
    """

    def __init__(self, key: bytes, method: str) -> None:
        super().__init__(
            f"no advertised server covers key {key.hex()[:16]}… ({method}): "
            "the directory has a shard coverage hole"
        )
        self.key = key
        self.method = method


@dataclass(frozen=True)
class ServerAdvertisement:
    """What a full node publishes to the directory.

    ``endpoint`` is how a client reaches the server — the in-process
    :class:`~repro.parp.server.FullNodeServer` itself, or a
    :class:`~repro.net.transport.SimEndpoint` over the simulated network.
    """

    address: Address
    endpoint: ServerEndpoint
    fee_schedule: FeeSchedule
    batch_version: Optional[int] = None
    name: str = ""
    #: the slice of the hashed-key space this server materializes;
    #: None advertises the whole state (a classic full-range server)
    shard: Optional[ShardRange] = None
    #: when the directory last accepted this ad (stamped by a clocked
    #: :class:`Marketplace` on advertise/republish); None in clockless
    #: directories, which never expire ads
    published_at: Optional[float] = None

    @classmethod
    def for_server(cls, server: Any, name: str = "",
                   endpoint: Optional[ServerEndpoint] = None,
                   ) -> "ServerAdvertisement":
        """Build an advertisement straight from a :class:`FullNodeServer`.

        An admission-controlled server advertises its *quoted* schedule —
        the base fees scaled by the current load multiplier — so surge
        pricing reaches clients through the directory, the same channel
        every other term of the offer travels.
        """
        quoted = getattr(server, "quoted_fee_schedule", None)
        return cls(
            address=server.address,
            endpoint=endpoint if endpoint is not None else server,
            fee_schedule=quoted() if callable(quoted) else server.fee_schedule,
            batch_version=server.batch_protocol_version(),
            name=name or getattr(getattr(server, "node", None), "name", ""),
            shard=getattr(server, "shard_range", None),
        )

    def covers(self, hashed_key: bytes) -> bool:
        """Whether this server's advertised slice can prove ``hashed_key``."""
        return self.shard is None or self.shard.covers(hashed_key)

    @cached_property
    def reference_price(self) -> int:
        """Sticker price of the standard call basket (see pricing).

        Cached: the advertisement is frozen, and selection reads this for
        every candidate on every routed query.
        """
        return self.fee_schedule.reference_price()

    @property
    def speaks_batch(self) -> bool:
        return self.batch_version == BATCH_PROTOCOL_VERSION

    @property
    def label(self) -> str:
        return self.name or self.address.hex()[:10]


class Marketplace:
    """The directory full nodes advertise in and clients select from.

    With a ``clock`` every accepted advertisement is stamped, and
    :meth:`sweep` expires servers that stopped refreshing — a directory
    full of dead endpoints would otherwise keep absorbing connect
    timeouts (and reputation penalties servers did nothing to earn).
    ``ad_ttl=None`` (the default) keeps ads fresh forever, preserving the
    clockless closed-world behavior tests rely on.
    """

    def __init__(self, clock=None, ad_ttl: Optional[float] = None) -> None:
        self._ads: dict[Address, ServerAdvertisement] = {}
        self._clock = clock
        self.ad_ttl = ad_ttl

    def _now(self) -> Optional[float]:
        return float(self._clock()) if self._clock is not None else None

    def advertise(self, ad: ServerAdvertisement) -> None:
        """Publish (or refresh) one server's advertisement."""
        now = self._now()
        if now is not None:
            ad = replace(ad, published_at=now)
        self._ads[ad.address] = ad

    def sweep(self, now: Optional[float] = None,
              ttl: Optional[float] = None) -> list[Address]:
        """Expire advertisements older than ``ttl`` (default: ``ad_ttl``).

        Returns the dropped addresses.  Unstamped ads (published through a
        clockless directory) and a ``ttl`` of None are both exempt — the
        sweep only ever removes servers that *stopped* doing something
        they demonstrably used to do (refresh via advertise/republish).
        """
        ttl = ttl if ttl is not None else self.ad_ttl
        if ttl is None:
            return []
        if now is None:
            now = self._now()
        if now is None:
            return []
        dropped = [address for address, ad in self._ads.items()
                   if ad.published_at is not None
                   and now - ad.published_at > ttl]
        for address in dropped:
            del self._ads[address]
        return dropped

    def advertise_server(self, server: Any, name: str = "",
                         endpoint: Optional[ServerEndpoint] = None,
                         ) -> ServerAdvertisement:
        ad = ServerAdvertisement.for_server(server, name=name, endpoint=endpoint)
        self.advertise(ad)
        return ad

    def republish(self, server: Any) -> Optional[ServerAdvertisement]:
        """Refresh a server's advertisement under its *current* load.

        Keeps the published name and endpoint (they do not change with
        load); only the priced terms — the quoted fee schedule — are
        re-read.  A server that never advertised here is left alone (None):
        republishing is a refresh, not a registration.
        """
        existing = self._ads.get(server.address)
        if existing is None:
            return None
        ad = ServerAdvertisement.for_server(
            server, name=existing.name, endpoint=existing.endpoint,
        )
        self.advertise(ad)
        return ad

    def withdraw(self, address: Address) -> None:
        self._ads.pop(address, None)

    def get(self, address: Address) -> Optional[ServerAdvertisement]:
        return self._ads.get(address)

    def advertisements(self) -> list[ServerAdvertisement]:
        return list(self._ads.values())

    def covering(self, hashed_key: bytes) -> list[ServerAdvertisement]:
        """Every advertisement whose shard range covers ``hashed_key``
        (regardless of reputation — this is the *directory* view that
        coverage checks gate on)."""
        return [ad for ad in self._ads.values() if ad.covers(hashed_key)]

    def __len__(self) -> int:
        return len(self._ads)

    def __contains__(self, address: Address) -> bool:
        return address in self._ads


@dataclass
class MarketplaceStats:
    """What the routing layer did on the client's behalf."""

    queries: int = 0              # queries answered (after any failover)
    failovers: int = 0            # re-issues to another server
    sessions_opened: int = 0
    frauds_detected: int = 0
    frauds_slashed: int = 0
    version_mismatches: int = 0
    hedged_queries: int = 0       # query_hedged races run
    hedge_launches: int = 0       # batches issued across all races
    hedges_cancelled: int = 0     # losing in-flight requests cancelled
    sharded_queries: int = 0      # query_sharded scatter-gathers run
    scatter_legs: int = 0         # shard legs across all scatters
    soft_failovers: int = 0       # Overloaded sheds routed around (no slash)
    retry_storms_avoided: int = 0  # waits honoring a server's retry_after


@dataclass
class HedgeAttempt:
    """One server's leg of a hedged race (see ``MarketplaceClient.last_hedge``).

    ``outcome`` ∈ {"in-flight", "won", "cancelled", "unused", "timeout",
    "invalid", "fraud", "overloaded", "session-error"} — "cancelled" means the request was
    provably still in flight when the winner's response verified; "unused"
    means the reply had already arrived but was never read.
    """

    address: Address
    label: str
    pending: "PendingBatch | PendingRequest"
    outcome: str = "in-flight"
    detail: str = ""


@dataclass
class ShardLeg:
    """One shard's slice of a scatter-gathered batch."""

    index: int
    calls: tuple[RpcCall, ...]
    positions: tuple[int, ...]    # where each call sits in the original batch
    keys: tuple[bytes, ...]       # hashed state keys routed to this leg
    outcome: Optional[BatchOutcome] = None
    winner: Optional[Address] = None
    error: str = ""
    cost: int = 0                 # channel-budget increment this leg consumed
    attempts: int = 0             # launches (hedges + failovers) it took

    @property
    def ok(self) -> bool:
        return self.outcome is not None


@dataclass(frozen=True)
class ScatterOutcome:
    """A scatter-gathered batch stitched back into request order.

    Every item came out of a §V-D-verified per-shard multiproof (each
    shard's slice proves against the *global* root, so the checks are the
    single-node ones, unchanged).  Unlike :class:`BatchOutcome`,
    ``amount_paid`` is a **sum of increments** across the winning legs —
    the legs pay on different servers' channels, so there is no single
    cumulative channel amount to report.
    """

    items: tuple[BatchItem, ...]
    report: VerificationReport
    amount_paid: int
    legs: tuple[ShardLeg, ...]
    batched: bool = True

    def __len__(self) -> int:
        return len(self.items)


class ShardScatterError(MarketplaceError):
    """Some scatter legs failed after exhausting their shard's servers.

    A partial failure is *typed*, never a silent partial result: winner
    legs' payments were already acked when their responses verified, and
    ``legs`` keeps the full per-shard picture (``failed_legs`` for just
    the casualties) so the caller can salvage what landed or retry the
    missing shards alone.
    """

    def __init__(self, message: str, legs: Sequence[ShardLeg],
                 attempts: Sequence[str] = ()) -> None:
        super().__init__(message, attempts)
        self.legs = tuple(legs)

    @property
    def failed_legs(self) -> tuple[ShardLeg, ...]:
        return tuple(leg for leg in self.legs if not leg.ok)


@dataclass
class _HedgeEntry:
    """Internal per-leg race state."""

    ad: ServerAdvertisement
    session: LightClientSession
    pending: "PendingBatch | PendingRequest"
    deadline: Optional[float]     # sim-clock instant; None for in-process
    attempt: HedgeAttempt
    cost: int = 0                 # what issuing this leg added to its channel


@dataclass
class _LegRace:
    """Internal per-shard scatter state (one hedged race per leg)."""

    leg: ShardLeg
    tip: int = 0
    tried: set[Address] = field(default_factory=set)
    skipped: set[Address] = field(default_factory=set)
    active: list[_HedgeEntry] = field(default_factory=list)


#: consecutive transport timeouts before a server is demoted to last resort.
COLD_AFTER = 2

#: how many times one query may *defer* back to an overloaded server (wait
#: out its retry_after and re-issue) before giving up on it for this query.
MAX_OVERLOAD_DEFERS = 2


class MarketplaceClient:
    """A light client that shops the marketplace instead of trusting one node.

    Selection score: ``reputation(score) × (cheapest reference price /
    server's reference price)`` — trust weighted by how competitively the
    server prices the standard call basket.  Servers that are banned or
    score below ``selection_threshold`` are never used.
    """

    def __init__(self, key: PrivateKey, marketplace: Marketplace,
                 reputation: Optional[ReputationLedger] = None,
                 witness: Optional[Any] = None,
                 headers: Optional[HeaderSyncer] = None,
                 checkpoint: Optional[Checkpoint] = None,
                 clock=None,
                 budget: int = DEFAULT_CHANNEL_BUDGET,
                 min_sessions: int = DEFAULT_MIN_SESSIONS,
                 selection_threshold: float = DEFAULT_SELECTION_THRESHOLD,
                 gas_price: int = DEFAULT_GAS_PRICE) -> None:
        if not 0 < budget <= MAX_AMOUNT:
            # a bad budget would fail identically against every server; catch
            # it here so no server is blamed (and banned) for a client bug
            raise MarketplaceError(f"channel budget {budget} out of range")
        self.key = key
        self.marketplace = marketplace
        self.reputation = reputation if reputation is not None else ReputationLedger()
        self.witness = witness              # anything with .submit(package)
        self.budget = budget
        self.min_sessions = max(1, min_sessions)
        self.selection_threshold = selection_threshold
        self.gas_price = gas_price
        self.sessions: dict[Address, LightClientSession] = {}
        #: sessions dropped after misbehavior, kept so their channels' α and
        #: acked amounts survive for settlement (escrow is money)
        self.retired: list[tuple[Address, LightClientSession]] = []
        self.stats = MarketplaceStats()
        #: per-leg record of the most recent hedged race (diagnostics/tests)
        self.last_hedge: list[HedgeAttempt] = []
        #: the most recent scatter-gather result (diagnostics/tests)
        self.last_scatter: Optional[ScatterOutcome] = None
        self._headers = headers
        self._checkpoint = checkpoint
        self._clock = clock
        #: gossip attachments (see :meth:`join_gossip`); None until joined
        self.gossip = None
        self.head_gossip = None
        self.rep_share = None
        self._ticks = 0.0
        self._mismatch_noted: set[Address] = set()
        #: consecutive transport failures per server; at COLD_AFTER the
        #: server drops to the back of the ranking so retries stop signing
        #: payments into a channel nobody is answering
        self._cold: dict[Address, int] = {}
        #: per-server backoff deadlines (clock instants) set by ``Overloaded``
        #: replies: the server's own retry_after, escalated by the shared
        #: jittered exponential policy on consecutive sheds.  A backed-off
        #: server sinks in the ranking, and re-issuing to it *waits out* the
        #: deadline first — honoring retry_after is what prevents the
        #: synchronized retry storm.
        self._backoff: dict[Address, float] = {}
        self._overload_streak: dict[Address, int] = {}
        self._backoff_policy = ExponentialBackoff(
            base=0.05, factor=2.0, cap=5.0, jitter=0.5,
            seed=int(self.address.hex()[:8], 16),
        )

    @property
    def address(self) -> Address:
        return self.key.address

    @property
    def headers(self) -> HeaderSyncer:
        """One shared header chain for all sessions (headers are free and
        multi-source, so every advertised endpoint is a source).

        With a ``checkpoint`` the syncer is a
        :class:`~repro.lightclient.checkpoint.CheckpointSyncer`: it anchors
        at the trusted header (quorum-cross-checked Bootstrap) and fetches
        only the headers from the checkpoint forward — onboarding cost is
        O(distance from checkpoint), not O(chain length).
        """
        if self._headers is None:
            ads = self.marketplace.advertisements()
            if not ads:
                raise MarketplaceError("cannot sync headers: empty marketplace")
            endpoints = [ad.endpoint for ad in ads]
            if self._checkpoint is not None:
                self._headers = CheckpointSyncer(endpoints, self._checkpoint)
            else:
                self._headers = HeaderSyncer(endpoints)
        return self._headers

    def _now(self) -> float:
        if self._clock is not None:
            return float(self._clock())
        self._ticks += 1.0          # deterministic logical time
        return self._ticks

    # ------------------------------------------------------------------ #
    # Gossip (push heads + shared reputation)
    # ------------------------------------------------------------------ #

    def join_gossip(self, gossip, stake_of=None,
                    staleness: Optional[float] = None):
        """Attach this client to a gossip node: push-mode header sync on
        ``new_heads`` plus shared reputation on ``reputation``.

        ``stake_of`` maps an address to its deposit-registry stake; it
        gates head announcements (only staked identities may announce)
        and weighs foreign reputation events.  ``staleness`` is how long
        the client trusts the push feed before falling back to pull
        polling.  Returns ``(head_gossip, rep_share)``.
        """
        from ..gossip.heads import HeadGossip
        from ..gossip.repshare import ReputationShare
        clock = gossip.network.clock.now
        if staleness is not None:
            self.headers.enable_push(clock, staleness=staleness)
        else:
            self.headers.enable_push(clock)
        self.gossip = gossip
        self.head_gossip = HeadGossip(
            gossip, self.headers, stake_of=stake_of,
            reputation=self.reputation, witness=self.witness,
            reporter=self.address,
            # a caught equivocator is first-hand news worth sharing
            on_equivocation=lambda proof: self._share_event(
                proof.announcer, EVENT_EQUIVOCATION,
                proof.evidence_digest()),
        )
        self.rep_share = ReputationShare(
            gossip, self.reputation, self.key, stake_of=stake_of,
        )
        return self.head_gossip, self.rep_share

    def _share_event(self, subject: Address, kind: str,
                     detail: bytes = b"") -> None:
        """Gossip a first-hand hard event (no-op before :meth:`join_gossip`;
        non-gossipable kinds are kept local by the share layer)."""
        if self.rep_share is None:
            return
        self.rep_share.publish(subject, kind,
                               subject.to_bytes() + kind.encode("utf-8")
                               + detail)

    # ------------------------------------------------------------------ #
    # Overload backoff (honoring a server's signed retry_after)
    # ------------------------------------------------------------------ #

    def _in_backoff(self, address: Address,
                    now: Optional[float] = None) -> bool:
        """Whether a server's retry_after window is still open (expired
        deadlines are dropped on the way out)."""
        deadline = self._backoff.get(address)
        if deadline is None:
            return False
        if now is None:
            now = self._now()
        if now >= deadline:
            self._backoff.pop(address, None)
            return False
        return True

    def _note_overload(self, address: Address, retry_after: float) -> None:
        """Park a shed server behind a deadline: its own (jittered, signed)
        ``retry_after``, escalated by the shared exponential-backoff policy
        as consecutive sheds accumulate."""
        streak = self._overload_streak.get(address, 0) + 1
        self._overload_streak[address] = streak
        wait = max(float(retry_after), self._backoff_policy.delay(streak))
        self._backoff[address] = self._now() + wait

    def _clear_backoff(self, address: Address) -> None:
        """A served response proves recovery: forget the overload history."""
        self._backoff.pop(address, None)
        self._overload_streak.pop(address, None)

    def _find_network(self):
        """Any simulated network reachable through our endpoints (to drive
        time forward while waiting out a backoff deadline)."""
        for session in self.sessions.values():
            network = getattr(session.endpoint, "network", None)
            if network is not None:
                return network
        for ad in self.marketplace.advertisements():
            network = getattr(ad.endpoint, "network", None)
            if network is not None:
                return network
        return None

    def _await_backoff(self, addresses: Sequence[Address]) -> bool:
        """Wait out the earliest backoff deadline among ``addresses``.

        This is the no-retry-storm guarantee: instead of re-issuing to a
        shed server immediately (arriving in the same saturated window as
        everyone else's retry), the client sits out the server's own
        jittered ``retry_after``.  Under simulated time the network runs
        until the deadline (other in-flight legs keep progressing); without
        a drivable clock the earliest entry is simply released, so routing
        always makes progress.
        """
        entries = [(self._backoff[a], a) for a in addresses
                   if a in self._backoff]
        if not entries:
            return False
        deadline, address = min(entries)
        self.stats.retry_storms_avoided += 1
        network = self._find_network()
        if network is not None and self._clock is not None:
            network.run_until(deadline)
        self._backoff.pop(address, None)
        return True

    # ------------------------------------------------------------------ #
    # Selection
    # ------------------------------------------------------------------ #

    def trust(self, address: Address, now: Optional[float] = None) -> float:
        """The ledger score with a newcomer floor for positive histories.

        A server with net-positive evidence must never rank below a total
        stranger (the raw ledger score dips under ``newcomer_score`` until
        ~``saturation`` successes accumulate); negative evidence, however,
        is taken at face value — that is what collapses below the selection
        threshold and gets a server routed around.
        """
        if now is None:
            now = self._now()
        score = self.reputation.score(address, now)
        if (self.reputation.events_of(address)
                and self.reputation.raw_score(address, now) > 0.0):
            return max(score, self.reputation.newcomer_score)
        return score

    def selection_score(self, ad: ServerAdvertisement,
                        now: Optional[float] = None) -> float:
        """Reputation-weighted, price-aware score in [0, 1]."""
        if now is None:
            now = self._now()
        if self.reputation.is_banned(ad.address, now):
            return 0.0
        ads = self.marketplace.advertisements() or [ad]
        cheapest = min(max(1, a.reference_price) for a in ads)
        return self.trust(ad.address, now) * (cheapest / max(1, ad.reference_price))

    def eligible(self, now: Optional[float] = None,
                 keys: Sequence[bytes] = ()) -> list[ServerAdvertisement]:
        """Advertisements ranked best-first by the combined score.

        Eligibility gates on *trust alone* — banned servers and those whose
        reputation score fell below ``selection_threshold`` are dropped; the
        price factor then only decides the order among trusted servers (a
        bargain price must never buy back a burned reputation).  When
        ``keys`` is given, only servers whose advertised shard range covers
        *every* key qualify — a shard server is never even a candidate for
        keys outside its slice.
        """
        if now is None:
            now = self._now()
        ads = self.marketplace.advertisements()
        cheapest = min((max(1, a.reference_price) for a in ads), default=1)
        keep = []
        for ad in ads:
            if self.reputation.is_banned(ad.address, now):
                continue
            if keys and not all(ad.covers(key) for key in keys):
                continue
            trust = self.trust(ad.address, now)
            if trust < self.selection_threshold:
                continue
            keep.append((trust * (cheapest / max(1, ad.reference_price)), ad))
        # cold (repeatedly unreachable) servers sink to last resort, then
        # backed-off (recently shedding) ones — re-ranking on overload;
        # among the rest: score, then cheaper, then demonstrated history
        # over a stranger, then a stable label order so routing is
        # deterministic.
        keep.sort(key=lambda pair: (
            self._cold.get(pair[1].address, 0) >= COLD_AFTER,
            self._in_backoff(pair[1].address, now),
            -pair[0], pair[1].reference_price,
            -self.reputation.raw_score(pair[1].address, now), pair[1].label,
        ))
        return [ad for _, ad in keep]

    # ------------------------------------------------------------------ #
    # Channel management
    # ------------------------------------------------------------------ #

    def bonded_sessions(self) -> dict[Address, LightClientSession]:
        return {a: s for a, s in self.sessions.items()
                if s.state is LightClientState.BONDED}

    def connect(self, min_sessions: Optional[int] = None) -> list[Address]:
        """Open channels to the ``min_sessions`` best-ranked servers.

        Servers that fail to connect get a timeout event and are skipped.
        Raises :class:`MarketplaceError` when not even one channel opens.
        """
        want = min_sessions if min_sessions is not None else self.min_sessions
        attempts: list[str] = []
        for ad in self.eligible():
            if len(self.bonded_sessions()) >= want:
                break
            if ad.address in self.bonded_sessions():
                continue
            try:
                self._open_session(ad)
            except SessionError as exc:
                # client-side lifecycle/budget problem: the server did not
                # misbehave, so no reputation penalty
                attempts.append(f"{ad.label}: {exc}")
            except Exception as exc:  # noqa: BLE001 — any connect failure ⇒ next server
                self.reputation.record(ad.address, EVENT_TIMEOUT, self._now())
                attempts.append(f"{ad.label}: {exc}")
        opened = self.bonded_sessions()
        if not opened:
            raise MarketplaceError("could not bond to any server", attempts)
        return list(opened)

    def _open_session(self, ad: ServerAdvertisement) -> LightClientSession:
        session = LightClientSession(
            self.key, ad.endpoint, self.headers,
            fee_schedule=ad.fee_schedule, gas_price=self.gas_price,
            clock=self._clock, batch_version=ad.batch_version,
        )
        session.connect(budget=self.budget)
        self.sessions[ad.address] = session
        self.stats.sessions_opened += 1
        return session

    def _session_for(self, ad: ServerAdvertisement) -> LightClientSession:
        session = self.sessions.get(ad.address)
        if session is not None and session.state is LightClientState.BONDED:
            return session
        return self._open_session(ad)

    def _retire_session(self, address: Address) -> None:
        """Stop using a session but keep it: its channel's α and acked
        amount are needed to settle the escrowed budget later."""
        session = self.sessions.pop(address, None)
        if session is not None:
            self.retired.append((address, session))

    def _replenish(self) -> None:
        """Best-effort: restore the warm-standby invariant after a drop."""
        try:
            if len(self.bonded_sessions()) < self.min_sessions:
                self.connect()
        except MarketplaceError:
            pass  # a later query will surface the exhaustion with context

    # ------------------------------------------------------------------ #
    # The routed request path
    # ------------------------------------------------------------------ #

    def request(self, method: str, *params: Any, tip: int = 0) -> RequestOutcome:
        """One verified query, served by whichever server survives routing."""
        call = RpcCall.create(method, *params)
        return self.request_call(call, tip=tip)

    def request_call(self, call: RpcCall, tip: int = 0) -> RequestOutcome:
        keys = self._require_coverage((call,))
        return self._serve(lambda s: s.request_call(call, tip=tip),
                           describe=call.method, keys=keys)

    def query_batch(self, calls: Sequence[RpcCall], tip: int = 0) -> BatchOutcome:
        """A batched query, routed to batch-speaking servers first.

        The whole batch goes to *one* server, so every state-keyed call
        must fall inside a single server's advertised range; a batch that
        spans shards needs :meth:`query_sharded` instead.
        """
        calls = tuple(calls)
        keys = self._require_coverage(calls)
        return self._serve(lambda s: s.query_batch(calls, tip=tip),
                           describe=f"batch[{len(calls)}]", want_batch=True,
                           keys=keys)

    # ------------------------------------------------------------------ #
    # Hedged fan-out: the failover race
    # ------------------------------------------------------------------ #

    def query_hedged(self, calls: Sequence[RpcCall], fanout: int = 2,
                     tip: int = 0) -> BatchOutcome:
        """Issue the same batch on the ``fanout`` best-ranked sessions and
        accept the **first response that survives §V-D verification**.

        This converts the serial timeout-chain failover of :meth:`_serve`
        into a race: every leg is a signed, paid request on that server's
        own channel (only the winner's payment is ever acked — losers are
        cancelled while in flight, and their unacked amounts are not
        volunteered at closure).  A leg that fails — fraud (escalated and
        slashed as usual), invalid response, or timeout — is replaced by
        the next-ranked server, so the race keeps its width until the
        marketplace runs out of candidates.  Legs that never verify leave
        their reputation events behind exactly like serial failover.

        A single-call query rides the single-request wire path (its fraud
        packages are what the on-chain FDM can decode, so a fast-but-
        malicious loser is actually *slashed*, not just dropped); multi-call
        queries ride the batch path, so servers that don't speak our batch
        version never join those races — and when *no* eligible server
        speaks it, the query falls back to the serial :meth:`query_batch`
        path (which degrades per key).
        """
        calls = tuple(calls)
        if not calls:
            raise MarketplaceError("a hedged query needs at least one call")
        fanout = max(1, int(fanout))
        keys = self._require_coverage(calls)
        describe = f"hedged batch[{len(calls)}]×{fanout}"
        tried: set[Address] = set()
        #: non-batch-speaking servers passed over while picking race legs —
        #: the per-key fallback pool if the whole race comes up empty
        skipped: set[Address] = set()
        attempts: list[str] = []
        active: list[_HedgeEntry] = []
        self.last_hedge = []

        for _ in range(fanout):
            self._hedge_launch(calls, tip, tried, skipped, attempts, active,
                               keys=keys)
        if not active:
            # nobody could even be issued to (commonly: no batch speakers) —
            # the serial path still knows how to degrade per key, excluding
            # the servers the launch attempts already burned
            return self._serve(lambda s: s.query_batch(calls, tip=tip),
                               describe=f"batch[{len(calls)}]",
                               want_batch=True, exclude=tried - skipped,
                               keys=keys)
        self.stats.hedged_queries += 1

        while active:
            self._hedge_wait(active)
            clock = self._hedge_clock(active)
            now = clock.now() if clock is not None else None
            # a clockless pass with nothing resolved means _hedge_wait
            # already ran the replies' own drivers for a full default bound
            stalled = (now is None
                       and not any(e.pending.reply.done() for e in active))
            for entry in list(active):
                expired = (now is not None and entry.deadline is not None
                           and now >= entry.deadline)
                if entry.pending.reply.done():
                    active.remove(entry)
                    outcome = self._hedge_collect(entry, attempts, tried)
                    if outcome is not None:
                        self._hedge_win(entry, active)
                        return outcome
                    self._hedge_launch(calls, tip, tried, skipped, attempts,
                                       active, keys=keys)
                elif expired or stalled:
                    # the synchrony bound passed with the reply still in
                    # flight: cancel the leg and collect it, so the shared
                    # failover policy (_penalize_failure) hands out the
                    # same transport-timeout verdict as the serial path.
                    # (stalled: a clockless transport whose legs a full
                    # default-bound wait could not resolve — timing them
                    # out keeps the race loop from spinning forever.)
                    active.remove(entry)
                    entry.pending.cancel()
                    outcome = self._hedge_collect(entry, attempts, tried)
                    if outcome is not None:
                        # resolved on the deadline boundary and verified:
                        # a win is a win
                        self._hedge_win(entry, active)
                        return outcome
                    self._hedge_launch(calls, tip, tried, skipped, attempts,
                                       active, keys=keys)
        if skipped:
            # every batch speaker failed, but servers without batch support
            # were never given a chance — degrade to the serial per-key path
            # (excluding the already-failed racers) rather than failing a
            # query an eligible server could answer
            return self._serve(lambda s: s.query_batch(calls, tip=tip),
                               describe=f"batch[{len(calls)}]",
                               want_batch=True, exclude=tried - skipped,
                               keys=keys)
        raise MarketplaceError(f"{describe}: every eligible server failed",
                               attempts)

    # ------------------------------------------------------------------ #
    # Sharded scatter-gather
    # ------------------------------------------------------------------ #

    def query_sharded(self, calls: Sequence[RpcCall], fanout: int = 1,
                      tip: int = 0) -> ScatterOutcome:
        """Scatter a batch across shard legs, gather verified multiproofs.

        The batch is split by the directory's shard map: each state-keyed
        call joins the leg of the shard covering its hashed key (unsharded
        calls — any serving node answers those — ride with the first leg).
        Every leg is an independent hedged race among the servers of *its*
        shard: ``fanout`` concurrent paid requests per leg, losers
        cancelled the moment a leg's first response verifies, failures
        replaced in-shard, with the serial failover path as last resort.
        Legs resolve in completion order (no head-of-line blocking on the
        slowest shard), and the per-shard results — each one a §V-D
        verified multiproof against the *global* state root — are stitched
        back into request order.

        A shard server is never asked for (and could not prove) keys
        outside its slice; a leg whose shard has no live server left ends
        the query with :class:`ShardScatterError` after the other legs'
        winners were paid.  A directory with no shard servers degenerates
        to one leg — the plain hedged wire path.
        """
        calls = tuple(calls)
        if not calls:
            raise MarketplaceError("a sharded query needs at least one call")
        fanout = max(1, int(fanout))
        legs = self._split_by_shard(calls)
        self.stats.sharded_queries += 1
        self.stats.scatter_legs += len(legs)
        attempts: list[str] = []
        self.last_hedge = []
        races: list[_LegRace] = []
        for leg in legs:
            # the tip (priority fee) rides on the first leg only: one scatter
            # is one query, not len(legs) separately-tipped ones
            race = _LegRace(leg=leg, tip=tip if leg.index == 0 else 0)
            races.append(race)
            for _ in range(fanout):
                if self._hedge_launch(leg.calls, race.tip, race.tried,
                                      race.skipped, attempts, race.active,
                                      keys=leg.keys) is None:
                    break
            leg.attempts = len(race.active)
            if not race.active:
                self._leg_fallback(race, attempts)

        while True:
            active_all = [e for race in races for e in race.active]
            if not active_all:
                break
            self._hedge_wait(active_all)
            clock = self._hedge_clock(active_all)
            now = clock.now() if clock is not None else None
            stalled = (now is None
                       and not any(e.pending.reply.done() for e in active_all))
            for race in races:
                for entry in list(race.active):
                    if entry not in race.active:
                        continue   # cancelled as a loser when its leg won
                    expired = (now is not None and entry.deadline is not None
                               and now >= entry.deadline)
                    if not entry.pending.reply.done() and not (expired
                                                               or stalled):
                        continue
                    race.active.remove(entry)
                    if not entry.pending.reply.done():
                        entry.pending.cancel()
                    outcome = self._hedge_collect(entry, attempts, race.tried)
                    if outcome is not None:
                        race.leg.outcome = outcome
                        race.leg.winner = entry.ad.address
                        race.leg.cost = entry.cost
                        # only this leg's losers are cancelled: the other
                        # legs' races are independent correlations
                        self._hedge_win(entry, race.active)
                        race.active.clear()
                    else:
                        replacement = self._hedge_launch(
                            race.leg.calls, race.tip, race.tried,
                            race.skipped, attempts, race.active,
                            keys=race.leg.keys)
                        if replacement is not None:
                            race.leg.attempts += 1
                        elif not race.active:
                            self._leg_fallback(race, attempts)

        failed = [race.leg for race in races if not race.leg.ok]
        if failed:
            # winners' payments were acked when their responses verified;
            # only the missing shards are reported, never silently dropped
            raise ShardScatterError(
                f"sharded batch[{len(calls)}]: {len(failed)} of "
                f"{len(races)} shard legs failed",
                [race.leg for race in races], attempts)

        items: list[Optional[BatchItem]] = [None] * len(calls)
        total = 0
        for race in races:
            leg = race.leg
            total += leg.cost
            for pos, item in zip(leg.positions, leg.outcome.items):
                items[pos] = item
        outcome = ScatterOutcome(
            items=tuple(items),
            # every winning leg verified VALID — a losing classification
            # never leaves _hedge_collect — so the stitched result is too
            report=VerificationReport(ResponseClass.VALID, "all-checks"),
            amount_paid=total,
            legs=tuple(race.leg for race in races),
        )
        self.last_scatter = outcome
        return outcome

    def _split_by_shard(self, calls: tuple[RpcCall, ...]) -> list[ShardLeg]:
        """Partition a batch into per-shard legs.

        Grouping follows the *directory*: each state-keyed call joins the
        shard range of the best-ranked advertisement covering its key (a
        full-range server groups the keys it wins into one leg), so every
        leg is answerable by a single server.  Unsharded calls ride with
        the first leg.  Raises :class:`NoServerForKey` when some key is
        covered by no advertised server at all.
        """
        ranked = self.eligible()
        groups: dict[tuple, list[int]] = {}
        keys_of: dict[tuple, list[bytes]] = {}
        unsharded: list[int] = []
        for i, call in enumerate(calls):
            key = shard_key_of_call(call)
            if key is None:
                unsharded.append(i)
                continue
            covering = [ad for ad in ranked if ad.covers(key)]
            if not covering:
                # no *eligible* server, but an advertised one may still
                # exist — group under its range and let the leg's race
                # surface the failure with full context
                covering = self.marketplace.covering(key)
            if not covering:
                raise NoServerForKey(key, call.method)
            shard = covering[0].shard
            gkey = ("full",) if shard is None else ("shard", shard.to_tuple())
            groups.setdefault(gkey, []).append(i)
            keys_of.setdefault(gkey, []).append(key)
        if not groups:
            groups[("full",)] = []
            keys_of[("full",)] = []
        ordered = list(groups)
        first = ordered[0]
        groups[first].extend(unsharded)
        groups[first].sort()
        legs = []
        for index, gkey in enumerate(ordered):
            positions = tuple(groups[gkey])
            legs.append(ShardLeg(
                index=index,
                calls=tuple(calls[p] for p in positions),
                positions=positions,
                keys=tuple(keys_of[gkey]),
            ))
        return legs

    def _leg_fallback(self, race: _LegRace, attempts: list[str]) -> None:
        """Serve one leg via the serial failover path (no hedge could even
        be launched — typically every candidate's connect failed)."""
        leg = race.leg

        def issue(session: LightClientSession) -> BatchOutcome:
            spent_before = session.channel.spent if session.channel else 0
            outcome = session.query_batch(leg.calls, tip=race.tip)
            leg.cost = outcome.amount_paid - spent_before
            leg.winner = session.full_node
            return outcome

        leg.attempts += 1
        try:
            leg.outcome = self._serve(
                issue, describe=f"shard leg[{leg.index}]", want_batch=True,
                exclude=race.tried - race.skipped, keys=leg.keys)
        except MarketplaceError as exc:
            leg.error = str(exc)

    def _require_coverage(self, calls: Sequence[RpcCall]) -> tuple[bytes, ...]:
        """The hashed keys routing ``calls``, with the coverage gate: a key
        no advertised server covers raises :class:`NoServerForKey` *before*
        any payment is signed."""
        keys = []
        for call in calls:
            key = shard_key_of_call(call)
            if key is None:
                continue
            if not self.marketplace.covering(key):
                raise NoServerForKey(key, call.method)
            keys.append(key)
        return tuple(keys)

    def _hedge_launch(self, calls: tuple[RpcCall, ...], tip: int,
                      tried: set[Address], skipped: set[Address],
                      attempts: list[str], active: list[_HedgeEntry],
                      keys: Sequence[bytes] = ()) -> Optional[_HedgeEntry]:
        """Add the next-ranked batch-speaking server to the race."""
        while True:
            ranked = [ad for ad in self.eligible(keys=keys)
                      if ad.address not in tried]
            if not ranked:
                return None
            ad = ranked[0]
            tried.add(ad.address)
            if self._in_backoff(ad.address):
                # a leg re-issued to a shed server waits out its signed
                # retry_after first (sim time keeps the other legs moving)
                self._await_backoff([ad.address])
            try:
                session = self._session_for(ad)
            except SessionError as exc:
                attempts.append(f"{ad.label}: connect: {exc}")  # client-side
                self.stats.failovers += 1
                continue
            except Exception as exc:  # noqa: BLE001 — connect failure ⇒ next
                self.reputation.record(ad.address, EVENT_TIMEOUT, self._now())
                attempts.append(f"{ad.label}: connect: {exc}")
                self.stats.failovers += 1
                continue
            single = len(calls) == 1
            if not single and not session.batch_supported():
                if ad.speaks_batch:
                    # the ad claimed our batch version but the probe says
                    # otherwise — that lie is what the mismatch event is
                    # for; an honestly-advertised legacy server is merely
                    # passed over (and kept for the per-key fallback)
                    self._note_version_mismatch(ad)
                attempts.append(f"{ad.label}: no batch support")
                skipped.add(ad.address)
                continue
            spent_before = session.channel.spent if session.channel else 0
            try:
                pending = (session.begin_request(calls[0], tip=tip) if single
                           else session.begin_batch(calls, tip=tip))
            except SessionError as exc:
                # local condition (typically an exhausted channel budget)
                attempts.append(f"{ad.label}: session: {exc}")
                self.stats.failovers += 1
                continue
            attempt = HedgeAttempt(address=ad.address, label=ad.label,
                                   pending=pending)
            self.last_hedge.append(attempt)
            self.stats.hedge_launches += 1
            entry = _HedgeEntry(
                ad=ad, session=session, pending=pending,
                deadline=self._hedge_deadline(session), attempt=attempt,
                cost=pending.request.a - spent_before,
            )
            active.append(entry)
            return entry

    def _hedge_deadline(self, session: LightClientSession) -> Optional[float]:
        """When this leg's synchrony bound expires (None for in-process
        endpoints, whose replies resolve at submit time)."""
        network = getattr(session.endpoint, "network", None)
        if network is None:
            return None
        timeout = getattr(session.endpoint, "timeout", None)
        if timeout is None:
            timeout = DEFAULT_TIMEOUT
        return network.clock.now() + timeout

    def _hedge_clock(self, active: list[_HedgeEntry]):
        """The race's notion of "now": the first networked leg's sim clock.

        Races are built from endpoints on one simulated network (every
        in-repo construction); legs on a *different* network still get
        their loop driven by ``wait_any``'s per-driver groups, but their
        deadlines are read against this clock, so keep a race on one
        network when timeout precision matters.
        """
        for entry in active:
            network = getattr(entry.session.endpoint, "network", None)
            if network is not None:
                return network.clock
        return None

    def _hedge_wait(self, active: list[_HedgeEntry]) -> None:
        """Drive the event loop until the first active leg resolves (or the
        nearest synchrony bound passes)."""
        replies = [entry.pending.reply for entry in active]
        if any(reply.done() for reply in replies):
            return
        clock = self._hedge_clock(active)
        if clock is None:
            # no sim clock to race deadlines against: let the replies' own
            # drivers (if any) run one full default bound; whatever is still
            # pending afterwards gets timed out by the caller
            wait_any(replies)
            return
        deadlines = [entry.deadline for entry in active
                     if entry.deadline is not None]
        horizon = (min(deadlines) - clock.now()) if deadlines else None
        if horizon is not None and horizon <= 0:
            return  # an overdue leg is waiting to be timed out
        wait_any(replies, timeout=horizon)

    def _hedge_collect(self, entry: _HedgeEntry, attempts: list[str],
                       tried: Optional[set[Address]] = None,
                       ) -> Optional[BatchOutcome]:
        """Verify one resolved leg; None means it lost (and was penalized).

        With ``tried`` given, an ``Overloaded`` loss *defers* instead of
        burning the server for the whole race: up to
        :data:`MAX_OVERLOAD_DEFERS` times per race the shed server leaves
        ``tried`` again, so the replacement launch can come back to it once
        its retry_after has been waited out.
        """
        try:
            outcome = entry.session.collect(entry.pending)
        except (FraudDetected, InvalidResponse, SessionError) as exc:
            tag, line = self._penalize_failure(entry.ad, exc)
            entry.attempt.outcome = tag
            entry.attempt.detail = (exc.report.check
                                    if isinstance(exc, (FraudDetected,
                                                        InvalidResponse))
                                    else str(exc))
            attempts.append(line)
            self.stats.failovers += 1
            if tag == "overloaded" and tried is not None:
                sheds = sum(1 for a in self.last_hedge
                            if a.address == entry.ad.address
                            and a.outcome == "overloaded")
                if sheds <= MAX_OVERLOAD_DEFERS:
                    tried.discard(entry.ad.address)
            return None
        entry.attempt.outcome = "won"
        if isinstance(outcome, RequestOutcome):  # single-call leg
            outcome = BatchOutcome(
                items=(BatchItem(
                    call=entry.pending.call, status=outcome.response.status,
                    result=outcome.response.result, report=outcome.report,
                ),),
                report=outcome.report, amount_paid=outcome.amount_paid,
                batched=False,
            )
        return outcome

    def _hedge_win(self, winner: _HedgeEntry,
                   losers: list[_HedgeEntry]) -> None:
        """Settle the race: cancel in-flight losers, credit the winner."""
        for loser in losers:
            if loser.pending.cancel():
                loser.attempt.outcome = "cancelled"
                self.stats.hedges_cancelled += 1
            else:
                loser.attempt.outcome = "unused"  # arrived, never read
        self._cold.pop(winner.ad.address, None)
        self._clear_backoff(winner.ad.address)
        self.reputation.record(winner.ad.address, EVENT_SERVED_OK, self._now())
        self.stats.queries += 1

    def _serve(self, issue, describe: str, want_batch: bool = False,
               exclude: Optional[set[Address]] = None,
               keys: Sequence[bytes] = ()):
        tried: set[Address] = set(exclude or ())
        #: per-query overload defers: a shed server leaves ``tried`` again
        #: (after its backoff) until the defer budget is spent
        deferred: dict[Address, int] = {}
        attempts: list[str] = []
        while True:
            ad = self._next_candidate(tried, want_batch, keys=keys)
            if ad is None:
                detail = f"{describe}: every eligible server failed"
                if keys and not attempts and not tried:
                    detail = (f"{describe}: no single eligible server covers "
                              f"all {len(keys)} state keys — scatter the "
                              "batch via query_sharded")
                raise MarketplaceError(detail, attempts)
            tried.add(ad.address)
            if self._in_backoff(ad.address):
                # honor the server's retry_after before re-issuing, instead
                # of joining the synchronized herd hammering it
                self._await_backoff([ad.address])
            try:
                session = self._session_for(ad)
            except SessionError as exc:
                attempts.append(f"{ad.label}: connect: {exc}")  # client-side
                self.stats.failovers += 1
                continue
            except Exception as exc:  # noqa: BLE001 — connect failure ⇒ failover
                self.reputation.record(ad.address, EVENT_TIMEOUT, self._now())
                attempts.append(f"{ad.label}: connect: {exc}")
                self.stats.failovers += 1
                continue
            if want_batch and not session.batch_supported():
                self._note_version_mismatch(ad)
            try:
                outcome = issue(session)
            except (FraudDetected, InvalidResponse, SessionError) as exc:
                tag, line = self._penalize_failure(ad, exc)
                attempts.append(line)
                self.stats.failovers += 1
                if tag == "overloaded":
                    count = deferred.get(ad.address, 0) + 1
                    deferred[ad.address] = count
                    if count <= MAX_OVERLOAD_DEFERS:
                        # a shed is a "come back later", not a verdict:
                        # keep the server retryable for this query
                        tried.discard(ad.address)
                continue
            self._cold.pop(ad.address, None)
            self._clear_backoff(ad.address)
            self.reputation.record(ad.address, EVENT_SERVED_OK, self._now())
            self.stats.queries += 1
            return outcome

    def _penalize_failure(self, ad: ServerAdvertisement,
                          exc: SessionError) -> tuple[str, str]:
        """The one failover policy, shared by the serial path and the hedged
        race: record reputation/stats for a failed attempt and return an
        ``(outcome tag, attempts-log line)`` pair."""
        if isinstance(exc, FraudDetected):
            self._on_fraud(ad, exc)
            self._replenish()
            return "fraud", f"{ad.label}: fraud [{exc.report.check}]"
        if isinstance(exc, InvalidResponse):
            if exc.report.check == "transport":
                kind = EVENT_TIMEOUT       # silent/dead/partitioned server
                self._cold[ad.address] = self._cold.get(ad.address, 0) + 1
                tag = "timeout"
            else:
                kind = EVENT_INVALID_RESPONSE
                self._retire_session(ad.address)  # §IV-F: terminate
                tag = "invalid"
                self._share_event(ad.address, kind,
                                  exc.report.check.encode("utf-8"))
            self.reputation.record(ad.address, kind, self._now())
            return tag, f"{ad.label}: {kind} [{exc.report.check}]"
        if isinstance(exc, ServerOverloaded):
            # *soft* failure: a signed, honest shed — no session retirement,
            # no cold streak, no hard reputation slash (the soft-weighted
            # breadcrumb only re-ranks).  The server's retry_after goes into
            # the backoff map so re-issues wait it out.
            self.stats.soft_failovers += 1
            self.reputation.record(ad.address, EVENT_OVERLOADED, self._now())
            self._note_overload(ad.address, exc.retry_after)
            return ("overloaded",
                    f"{ad.label}: overloaded "
                    f"(retry in {exc.retry_after:.3f}s)")
        # plain SessionError: a local condition (most commonly this channel's
        # budget is exhausted) — not the server's fault, no reputation event
        return "session-error", f"{ad.label}: session: {exc}"

    def _next_candidate(self, tried: set[Address], want_batch: bool,
                        keys: Sequence[bytes] = (),
                        ) -> Optional[ServerAdvertisement]:
        ranked = [ad for ad in self.eligible(keys=keys)
                  if ad.address not in tried]
        if not ranked:
            return None
        if want_batch:
            for ad in ranked:
                if ad.speaks_batch:
                    return ad
            # no batch speaker left: per-key fallback on the best remaining
        return ranked[0]

    def _note_version_mismatch(self, ad: ServerAdvertisement) -> None:
        """Record (once per server) that it cannot serve our batch version."""
        if ad.address in self._mismatch_noted:
            return
        self._mismatch_noted.add(ad.address)
        self.stats.version_mismatches += 1
        self.reputation.record(ad.address, EVENT_VERSION_MISMATCH, self._now())

    def _on_fraud(self, ad: ServerAdvertisement, exc: FraudDetected) -> None:
        """Escalate provable fraud: witness submission → on-chain slash."""
        self.stats.frauds_detected += 1
        self._retire_session(ad.address)
        kind = EVENT_FRAUD_DETECTED
        if exc.package is not None and self.witness is not None:
            try:
                self.witness.submit(exc.package)
                self.stats.frauds_slashed += 1
                kind = EVENT_FRAUD_SLASHED
            except FraudProofError:
                pass  # evidence did not stick on-chain; local penalty stands
        self.reputation.record(ad.address, kind, self._now())
        detail = (exc.package.calldata(self.address)
                  if exc.package is not None
                  else exc.report.check.encode("utf-8"))
        self._share_event(ad.address, kind, detail)

    # ------------------------------------------------------------------ #
    # Typed conveniences (mirror LightClientSession's)
    # ------------------------------------------------------------------ #

    def get_balance(self, address: Address) -> int:
        outcome = self.request("eth_getBalance", address)
        return decode_balance(outcome.response.result)

    def get_balances(self, addresses: Sequence[Address]) -> list[int]:
        calls = [RpcCall.create("eth_getBalance", a) for a in addresses]
        outcome = self.query_batch(calls)
        balances = []
        for item in outcome.items:
            if not item.ok:
                raise MarketplaceError(
                    f"balance query failed for {item.call.params[0].hex()}"
                )
            balances.append(decode_balance(item.result))
        return balances

    # ------------------------------------------------------------------ #
    # Settlement
    # ------------------------------------------------------------------ #

    def close_all(self) -> dict[Address, bytes]:
        """Cooperatively close every bonded channel; returns close-tx hashes.

        Retired channels (dropped after misbehavior but still open on-chain)
        are settled too — at their *acked* amount, relayed through a server
        we still trust when one is bonded, since the retired server's word
        is exactly what we stopped taking.  A server that no longer answers
        keeps its channel open (the on-chain dispute path still protects the
        funds); everyone that settles cleanly gets a ``channel_settled``
        reputation credit.
        """
        hashes: dict[Address, bytes] = {}
        bonded = list(self.bonded_sessions().items())
        relay = bonded[0][1].endpoint if bonded else None
        settlable = [(a, s, True) for a, s in bonded] + [
            (address, session, False) for address, session in self.retired
            if session.state is LightClientState.BONDED
        ]
        for address, session, in_good_standing in settlable:
            trusted_relay = relay if session.endpoint is not relay else None
            try:
                hashes[address] = session.close(relay=trusted_relay)
            except Exception:  # noqa: BLE001 — unreachable server: leave open
                self.reputation.record(address, EVENT_TIMEOUT, self._now())
                continue
            if in_good_standing:  # no settlement credit for retired servers
                self.reputation.record(address, EVENT_CHANNEL_SETTLED,
                                       self._now())
        return hashes

    def __repr__(self) -> str:
        return (
            f"MarketplaceClient(addr={self.address.hex()[:10]}…, "
            f"sessions={len(self.bonded_sessions())}/{len(self.marketplace)}, "
            f"queries={self.stats.queries}, failovers={self.stats.failovers})"
        )
