"""The PARP full-node serving engine (server side of Fig. 5).

Wraps a :class:`repro.node.fullnode.FullNode` with the PARP layers:

* handshake consent and channel bootstrapping (Algorithm 1, FN side),
* request verification — step (B): signatures, channel accounting, fees,
* query execution + Merkle proof generation + response signing — step (C),
* channel bookkeeping (retaining the latest redeemable payment proof),
* free services the protocol grants: header serving (§IV-D) and relaying
  of channel-management transactions (§IV-E.2 "mediated via the full node").

A server refuses to serve until its operator has staked collateral in the
Deposit Module — the availability condition of Fig. 4.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Optional

from ..chain.chain import ChainError
from ..chain.header import BlockHeader
from ..chain.receipt import LogEntry
from ..chain.transaction import Transaction, TransactionError
from ..contracts.addresses import CHANNELS_MODULE_ADDRESS, FRAUD_MODULE_ADDRESS
from ..crypto import keccak256
from ..crypto.keys import Address, PrivateKey
from ..metrics.cache import LRUCache
from ..node.fullnode import FullNode
from ..rlp import codec as rlp
from ..trie.shard import ShardRange
from .admission import AdmissionConfig, AdmissionController
from .channel import ChannelError, ServerChannel
from .constants import BATCH_PROTOCOL_VERSION, DEFAULT_HANDSHAKE_EXPIRY_SECONDS
from .handshake import Handshake, HandshakeConfirm, OpenChannelReceipt
from .messages import (
    BatchRequest,
    BatchResponse,
    MessageError,
    OverloadedReply,
    PARPRequest,
    PARPResponse,
    ResponseStatus,
    RpcCall,
)
from .pricing import (
    DEFAULT_FEE_SCHEDULE,
    MULTIPLIER_SCALE,
    FeeSchedule,
    RepricedFeeSchedule,
    load_multiplier,
)
from .queries import QueryError, execute_query
from .sharding import shard_key_of_call

__all__ = ["ServeError", "ServerStats", "FullNodeServer"]

_CHANNEL_OPENED_TOPIC = keccak256(b"ChannelOpened")

#: write methods break the one-snapshot guarantee of a batch; they are the
#: only calls a batch refuses (per-item, with a signed error).
_NOT_BATCHABLE = frozenset({"eth_sendRawTransaction"})

#: read methods whose (result, proof) is deterministic given the chain at a
#: fixed height — safe to keep behind the proof LRU.
_CACHEABLE_METHODS = frozenset({
    "eth_getBalance",
    "eth_getStorageAt",
    "eth_getTransactionByBlockNumberAndIndex",
    "eth_getTransactionReceipt",
})


class ServeError(Exception):
    """Request rejected before a signed response could be produced.

    The transport surfaces this as an *unsigned* error — the client
    classifies it as INVALID and should fail over to another node.
    """


class _SnapshotViewBackend:
    """ChainBackend facade that memoizes per-height state read views.

    Every proved query calls ``state_at(m_b)``; without this, each request
    (and each item of a batch) builds a fresh :class:`StateDB` view.  The
    chain is append-only and fork-free, so the state at a given height is
    immutable once that block exists — views can be cached indefinitely and
    shared across requests.  Combined with the trie's decoded-node LRU the
    whole batch walks warm decoded nodes instead of re-decoding the root
    path per item.
    """

    def __init__(self, node: FullNode, capacity: int = 16) -> None:
        self._node = node
        self._views = LRUCache(capacity=capacity)

    def state_at(self, number: int):
        # LRUCache is internally locked; racing duplicate view construction
        # is safe (read views are idempotent, last write wins)
        return self._views.get_or_put(number,
                                      lambda: self._node.state_at(number))

    def __getattr__(self, name):
        return getattr(self._node, name)


class _ShardSliceBackend(_SnapshotViewBackend):
    """Per-height read views backed by *only* this shard's trie slice.

    A shard server follows the full chain (headers, blocks, receipts — the
    delegated attributes) but materializes just its slice of each height's
    state: the account-trie spine plus the subtrees and storage tries of
    in-range accounts.  In-range proofs come out bit-for-bit identical to a
    full node's (they verify against the global ``state_root``); proofs for
    anything else are structurally impossible — the slice is missing the
    nodes — so range enforcement is physics, not policy.
    """

    def __init__(self, node: FullNode, shard: ShardRange,
                 capacity: int = 16) -> None:
        super().__init__(node, capacity=capacity)
        self._shard = shard

    def state_at(self, number: int):
        return self._views.get_or_put(
            number,
            lambda: self._node.state_at(number).shard_slice(self._shard),
        )


@dataclass
class ServerStats:
    """Serving counters (feeds Fig. 7 and the Proof-of-Serving extension)."""

    handshakes: int = 0
    channels_opened: int = 0
    requests_served: int = 0
    requests_rejected: int = 0
    batches_served: int = 0
    batch_queries_served: int = 0
    out_of_range_rejected: int = 0   # state-keyed calls outside the shard
    admitted: int = 0                # requests/batches past the admission gate
    shed: int = 0                    # signed Overloaded replies sent instead
    heads_announced: int = 0         # signed head announcements gossiped
    bytes_in: int = 0
    bytes_out: int = 0
    fees_earned: int = 0


class FullNodeServer:
    """A PARP-compatible full node server."""

    def __init__(self, node: FullNode,
                 fee_schedule: FeeSchedule = DEFAULT_FEE_SCHEDULE,
                 handshake_expiry: float = DEFAULT_HANDSHAKE_EXPIRY_SECONDS,
                 proof_cache_size: int = 2048,
                 clock=None,
                 shard_range: Optional[ShardRange] = None,
                 admission: Optional[AdmissionConfig | AdmissionController]
                 = None) -> None:
        self.node = node
        self.key = node.key
        self.fee_schedule = fee_schedule
        self.handshake_expiry = handshake_expiry
        #: the slice of the account space this server materializes and
        #: advertises; None (or the full range) means a whole-state server
        self.shard_range = (None if shard_range is not None
                            and shard_range.is_full else shard_range)
        self.channels: dict[bytes, ServerChannel] = {}
        self.stats = ServerStats()
        #: memoized per-height state views: batch items and concurrent
        #: sessions pinned to the same snapshot share one warm StateDB.
        #: Shard servers substitute slice-backed views — same interface,
        #: physically incapable of proving out-of-range keys.
        self._backend = (_SnapshotViewBackend(node) if self.shard_range is None
                         else _ShardSliceBackend(node, self.shard_range))
        #: recent (result, proof) pairs keyed by (height, call): a dApp
        #: re-reading hot keys between blocks skips the trie walk entirely.
        self.proof_cache: LRUCache = LRUCache(capacity=proof_cache_size)
        self._clock = clock  # callable returning seconds; defaults to chain time
        #: bounded admission pipeline — opt-in: None keeps the seed behavior
        #: (accept unbounded work, never shed).  Pass an
        #: :class:`~repro.parp.admission.AdmissionConfig` (built into a
        #: controller on the server's clock) or a ready controller.
        if isinstance(admission, AdmissionConfig):
            admission = AdmissionController(admission, clock=clock)
        self.admission: Optional[AdmissionController] = admission
        #: modeled queueing+service delay of the most recently admitted
        #: request; the network binding consumes it to schedule the reply
        #: (so queueing shows up in the latency clients actually measure)
        self._service_delay = 0.0
        # Multi-client session multiplexing: channel registration and each
        # channel's payment accounting are serialized independently, so N
        # concurrent clients (threads or interleaved sim events) cannot
        # corrupt the (a, σ_a) pair that is the node's money.  Channel locks
        # are reentrant: with the futures transport a serve handler can run
        # while an outer frame of the same (single-threaded) event loop is
        # already inside this channel — e.g. a client driving the loop from
        # collect() while another of its in-flight requests is delivered —
        # and a plain Lock would self-deadlock where no real contention
        # exists.  Cross-thread exclusion is unchanged.
        self._registry_lock = threading.Lock()
        self._channel_locks: dict[bytes, threading.RLock] = {}
        self._stats_lock = threading.Lock()
        #: the gossip node announcing this server's sealed heads (if any)
        self.gossip = None
        self._seal_listener = None

    @property
    def address(self) -> Address:
        return self.key.address

    @property
    def node_store(self):
        """The serving node's backing trie store (see :mod:`repro.storage`).

        Disk-backed servers expose their store stats (batches, appended
        bytes, recovery counters) here for the benches and operators; the
        serving path itself is backend-agnostic — proofs read through the
        store interface plus the decoded-node LRU.
        """
        return self.node.node_store

    def _now(self) -> int:
        if self._clock is not None:
            return int(self._clock())
        return self.node.chain.head.header.timestamp

    def _channel_and_lock(self, alpha: bytes,
                          ) -> tuple[Optional[ServerChannel],
                                     Optional[threading.Lock]]:
        with self._registry_lock:
            channel = self.channels.get(alpha)
            if channel is None:
                return None, None
            lock = self._channel_locks.get(alpha)
            if lock is None:  # channel injected directly (tests, adoption)
                lock = self._channel_locks[alpha] = threading.RLock()
            return channel, lock

    def _bump(self, field_name: str, amount: int = 1) -> None:
        with self._stats_lock:
            setattr(self.stats, field_name,
                    getattr(self.stats, field_name) + amount)

    @property
    def open_channel_count(self) -> int:
        """Channels currently multiplexed on this server (not yet closed)."""
        with self._registry_lock:
            return sum(1 for c in self.channels.values() if not c.closed)

    # ------------------------------------------------------------------ #
    # Connection setup (Algorithm 1, full-node side)
    # ------------------------------------------------------------------ #

    def handshake(self, msg: Handshake) -> HandshakeConfirm:
        """Consent to serve a light client; the confirmation expires."""
        self._bump("handshakes")
        expiry = self._now() + int(self.handshake_expiry)
        return HandshakeConfirm.build(self.key, msg.light_client, expiry)

    def open_channel(self, raw_tx: bytes) -> OpenChannelReceipt:
        """Relay the LC's OpenChannel transaction and acknowledge the channel.

        The FN mediates this on-chain step (§IV-E.2): it submits the signed
        transaction, waits for inclusion, extracts the assigned channel id
        from the ``ChannelOpened`` event, registers the channel locally, and
        returns the counter-signed receipt of Algorithm 1 line 17.
        """
        self._bump("bytes_in", len(raw_tx))
        try:
            tx = Transaction.decode(raw_tx)
        except TransactionError as exc:
            raise ServeError(f"undecodable OpenChannel transaction: {exc}") from exc
        if tx.to != CHANNELS_MODULE_ADDRESS:
            raise ServeError("OpenChannel must target the Channels module")
        try:
            tx_hash = self.node.submit_transaction(raw_tx)
        except ChainError as exc:
            raise ServeError(f"OpenChannel rejected by the chain: {exc}") from exc
        location = self.node.ensure_mined(tx_hash)
        if location is None:
            raise ServeError("OpenChannel transaction was not included")
        receipt = self.node.chain.get_receipt(tx_hash)
        if receipt is None or not receipt.succeeded:
            raise ServeError("OpenChannel transaction reverted")
        event = self._find_channel_opened(receipt.logs, tx.sender)
        if event is None:
            raise ServeError("no ChannelOpened event for this transaction")
        alpha, light_client, budget = event
        with self._registry_lock:
            self.channels[alpha] = ServerChannel(
                alpha=alpha, light_client=light_client, budget=budget,
            )
            self._channel_locks[alpha] = threading.RLock()
        self._bump("channels_opened")
        return OpenChannelReceipt.build(self.key, alpha)

    def _find_channel_opened(self, logs: tuple[LogEntry, ...],
                             sender: Address) -> Optional[tuple[bytes, Address, int]]:
        for log in logs:
            if not log.topics or log.topics[0] != _CHANNEL_OPENED_TOPIC:
                continue
            if len(log.topics) != 4:
                continue
            alpha = log.topics[1][-16:]
            light_client = Address(log.topics[2][-20:])
            full_node = Address(log.topics[3][-20:])
            if full_node != self.address or light_client != sender:
                continue
            budget = int.from_bytes(log.data, "big")
            return alpha, light_client, budget
        return None

    # ------------------------------------------------------------------ #
    # Free services (headers §IV-D, channel-management relay §IV-E)
    # ------------------------------------------------------------------ #

    def serve_header(self, number: int) -> Optional[BlockHeader]:
        return self.node.serve_header(number)

    def serve_head_number(self) -> int:
        return self.node.serve_head_number()

    def serve_bootstrap(self, checkpoint_hash: bytes) -> Optional[BlockHeader]:
        """Free checkpoint bootstrap: the header behind a trusted hash
        (self-certifying for the client — keccak(header) must equal it)."""
        return self.node.serve_bootstrap(checkpoint_hash)

    def serve_updates_range(self, start: int, count: int) -> list[BlockHeader]:
        """Free UpdatesByRange page (headers ride the free tier, §IV-D);
        the billable ``parp_updatesByRange`` query returns the same data
        with signed-response accountability."""
        return self.node.serve_updates_range(start, count)

    def get_transaction_count(self, address: Address) -> int:
        """Free bootstrap query: the LC's nonce for channel transactions."""
        return self.node.chain.state.nonce_of(address)

    # ------------------------------------------------------------------ #
    # Gossip (push-based head propagation)
    # ------------------------------------------------------------------ #

    def enable_gossip(self, gossip) -> None:
        """Announce every block this chain seals on the ``new_heads`` topic.

        The announcement is the sealed header signed with the *operator
        key* — the same identity that staked in the deposit registry, so
        receivers can stake-gate announcers, and a later conflicting
        announcement at the same height is slashable equivocation.
        """
        from ..gossip.heads import TOPIC_NEW_HEADS, HeadAnnouncement

        if self._seal_listener is not None:
            self.node.chain.remove_seal_listener(self._seal_listener)
        self.gossip = gossip

        def announce(block) -> None:
            announcement = HeadAnnouncement.build(block.header, self.key)
            gossip.publish(TOPIC_NEW_HEADS, announcement.encode())
            self._bump("heads_announced")

        self._seal_listener = self.node.chain.on_seal(announce)

    def disable_gossip(self) -> None:
        if self._seal_listener is not None:
            self.node.chain.remove_seal_listener(self._seal_listener)
            self._seal_listener = None
        self.gossip = None

    def relay_transaction(self, raw_tx: bytes) -> bytes:
        """Free relay, restricted to PARP channel/fraud management calls."""
        try:
            tx = Transaction.decode(raw_tx)
        except TransactionError as exc:
            raise ServeError(f"undecodable transaction: {exc}") from exc
        if tx.to not in (CHANNELS_MODULE_ADDRESS, FRAUD_MODULE_ADDRESS):
            raise ServeError(
                "free relay is limited to channel and fraud management; "
                "use a paid eth_sendRawTransaction for other transactions"
            )
        tx_hash = self.node.submit_transaction(raw_tx)
        self.node.ensure_mined(tx_hash)
        return tx_hash

    # ------------------------------------------------------------------ #
    # The paid request path (steps (B) and (C) of Fig. 5)
    # ------------------------------------------------------------------ #

    def serve_request(self, wire: bytes) -> bytes:
        """Verify, execute, prove, and sign one PARP request.

        The admission gate sits between decode and verification: shedding
        must stay cheaper than serving (no signature checks, no billing —
        the client is *not* charged for a request that was never admitted),
        and a shed comes back as a signed
        :class:`~repro.parp.messages.OverloadedReply` instead of a served
        response.
        """
        self._bump("bytes_in", len(wire))
        try:
            request = PARPRequest.decode_wire(wire)
        except MessageError as exc:
            self._bump("requests_rejected")
            raise ServeError(f"undecodable request: {exc}") from exc
        shed = self._admission_gate(request.h_req, queries=1)
        if shed is not None:
            return shed
        self._verify_request(request)                  # step (B)
        response = self._execute_and_sign(request)     # step (C)
        out = response.encode_wire()
        self._bump("bytes_out", len(out))
        self._bump("requests_served")
        return out

    def _verify_request(self, request: PARPRequest) -> PARPRequest:
        channel, lock = self._channel_and_lock(request.alpha)
        if channel is None:
            self._bump("requests_rejected")
            raise ServeError(f"unknown channel {request.alpha.hex()}")
        try:
            request.verify(expected_sender=channel.light_client)
        except MessageError as exc:
            self._bump("requests_rejected")
            raise ServeError(f"request verification failed: {exc}") from exc
        price = self.fee_schedule.price(request.call)
        with lock:
            previous = channel.latest_amount
            try:
                channel.accept_request_payment(request, min_increment=price)
            except ChannelError as exc:
                self._bump("requests_rejected")
                raise ServeError(f"payment rejected: {exc}") from exc
            earned = channel.latest_amount - previous
        self._bump("fees_earned", earned)
        return request

    def _admission_gate(self, h_req: bytes, queries: int) -> Optional[bytes]:
        """Offer a request to the admission controller.

        Returns the encoded, signed ``Overloaded`` reply when the request is
        shed, or ``None`` when admitted (in which case the modeled queueing
        delay is parked for the transport to pick up via
        :meth:`consume_service_delay`).  Servers without an admission
        controller admit everything, exactly like the seed.
        """
        if self.admission is None:
            return None
        decision = self.admission.offer(self.admission.cost_of(queries))
        if decision.admitted:
            self._bump("admitted")
            self._service_delay = decision.queue_delay
            return None
        self._bump("shed")
        reply = OverloadedReply.build(
            m_b=self.node.head_number(),
            load=decision.load,
            retry_after=decision.retry_after,
            fee_multiplier=load_multiplier(
                decision.load,
                knee=self.admission.config.pricing_knee,
                cap=self.admission.config.pricing_cap,
            ),
            h_req=h_req,
            key=self.key,
        )
        out = reply.encode_wire()
        self._bump("bytes_out", len(out))
        return out

    def consume_service_delay(self) -> float:
        """Take (and reset) the queueing delay of the last admitted request.

        The transport binding calls this after the handler returns and
        schedules the reply that far into the future, so admitted work
        observably queues behind the backlog instead of replying instantly.
        """
        delay, self._service_delay = self._service_delay, 0.0
        return delay

    def _execute_and_sign(self, request: PARPRequest) -> PARPResponse:
        call = request.call
        # The client's pinned block must be on our chain (same network).
        pinned = self.node.chain.get_block_by_hash(request.h_b)
        if pinned is None:
            return self._error_response(
                request, f"unknown reference block {request.h_b.hex()[:16]}"
            )
        violation = self._range_violation(call)
        if violation is not None:
            # a *signed* error: the shard server attributably declines keys
            # outside its advertised range instead of letting the slice walk
            # blow up into an unsigned transport failure
            return self._error_response(request, violation)
        if call.method == "parp_channelStatus":
            result, proof = self._channel_status(call)
        else:
            try:
                m_b = self.node.head_number()
                result, proof = self._execute_cached(call, m_b)
            except QueryError as exc:
                return self._error_response(request, str(exc))
        m_b = self.node.head_number()  # sends advance the head to inclusion
        return PARPResponse.build(
            alpha=request.alpha, request=request, m_b=m_b,
            result=result, proof=proof, key=self.key,
        )

    def _channel_status(self, call: RpcCall) -> tuple[bytes, list[bytes]]:
        """Cheap, unverified channel-status probe from local records."""
        alpha = call.param_bytes(0, exact=16)
        channel = self.channels.get(alpha)
        if channel is None:
            status = 0
        elif channel.closed:
            status = 3
        else:
            status = 1
        return rlp.encode(rlp.encode_int(status)), []

    def _error_response(self, request: PARPRequest, message: str) -> PARPResponse:
        """A *signed* error: the client paid for the attempt and gets an
        attributable outcome (it cannot be forged by a third party)."""
        return PARPResponse.build(
            alpha=request.alpha, request=request, m_b=self.node.head_number(),
            result=_error_result(message), proof=[], key=self.key,
            status=ResponseStatus.ERROR,
        )

    def _execute_cached(self, call: RpcCall, m_b: int) -> tuple[bytes, list[bytes]]:
        """Execute a query through the proof LRU when deterministic at m_b.

        Execution goes through the snapshot-view backend, so every query at
        the same height reuses one cached StateDB read view.
        """
        if call.method not in _CACHEABLE_METHODS:
            return execute_query(self._backend, call, m_b)
        cache_key = (m_b, call.encode())
        cached = self.proof_cache.get(cache_key)  # LRUCache locks internally
        if cached is not None:
            return cached
        result, proof = execute_query(self._backend, call, m_b)
        self.proof_cache.put(cache_key, (result, proof))
        return result, proof

    # ------------------------------------------------------------------ #
    # Batched serving (multiproof extension)
    # ------------------------------------------------------------------ #

    def _range_violation(self, call: RpcCall) -> Optional[str]:
        """Why a state-keyed call falls outside this shard, or None."""
        if self.shard_range is None:
            return None
        key = shard_key_of_call(call)
        if key is None or self.shard_range.covers(key):
            return None
        self._bump("out_of_range_rejected")
        return (f"key {key.hex()[:16]}… is outside this server's shard "
                f"{self.shard_range.label}")

    def shard_info(self) -> Optional[tuple[int, int, bytes, int]]:
        """Free probe: ``(lo, hi, shard commitment, height)`` or None.

        The commitment is the masked-root hash of
        :func:`repro.trie.shard.shard_commitment` at the current head — two
        honest servers of one shard must agree on it, and any full node can
        recompute it for auditing; a whole-state server returns None.
        """
        if self.shard_range is None:
            return None
        head = self.node.head_number()
        state = self._backend.state_at(head)
        return (self.shard_range.lo, self.shard_range.hi,
                state.shard_commitment(self.shard_range), head)

    def load_info(self) -> dict:
        """Free probe beside :meth:`shard_info`: the admission snapshot.

        Clients and operators read the current load factor, EWMA queue
        depth / serve delay, quote multiplier, and admitted/shed counters.
        Servers without admission control report a permanently idle pipeline.
        """
        if self.admission is None:
            return {
                "load": 0.0,
                "queue_depth": 0.0,
                "ewma_queue_depth": 0.0,
                "ewma_serve_delay": 0.0,
                "fee_multiplier": 1.0,
                "max_queue_cost": float("inf"),
                "service_time": 0.0,
                "admitted": self.stats.requests_served,
                "shed": 0,
            }
        return self.admission.snapshot()

    def current_fee_multiplier(self) -> float:
        """The load→fee multiplier this server would quote right now."""
        if self.admission is None:
            return 1.0
        return self.admission.fee_multiplier()

    def quoted_fee_schedule(self) -> FeeSchedule:
        """The fee schedule this server *advertises* under current load.

        Repricing is quote-only: enforcement in the serving path stays at the
        base schedule (its prices are the floor), so a client holding a stale
        cheaper quote still clears ``min_increment`` — overload never turns
        honest payments into rejections.  Quotes are re-published through the
        marketplace so newly ranking clients see (and pay) the surge price.
        """
        multiplier = self.current_fee_multiplier()
        if multiplier <= 1.0:
            return self.fee_schedule
        millis = max(MULTIPLIER_SCALE, round(multiplier * MULTIPLIER_SCALE))
        return RepricedFeeSchedule(base=self.fee_schedule,
                                   multiplier_millis=millis)

    def batch_protocol_version(self) -> int:
        """Free capability probe: the batch sub-protocol this server speaks.

        Clients compare this against their own
        :data:`~repro.parp.constants.BATCH_PROTOCOL_VERSION` before batching
        and fall back to per-key requests on a mismatch.
        """
        return BATCH_PROTOCOL_VERSION

    def serve_batch(self, wire: bytes) -> bytes:
        """Verify, execute, multiprove, and sign one batch of N queries.

        All N queries run against one snapshot (the head at batch start),
        their Merkle proofs are merged into one deduplicated node pool, and
        the channel is billed with a single update — the whole point of
        batching: metadata, signatures, and shared trie levels are paid for
        once instead of N times.
        """
        self._bump("bytes_in", len(wire))
        try:
            batch = BatchRequest.decode_wire(wire)
        except MessageError as exc:
            self._bump("requests_rejected")
            raise ServeError(f"undecodable batch request: {exc}") from exc
        shed = self._admission_gate(batch.h_req, queries=len(batch.calls))
        if shed is not None:
            return shed
        self._verify_batch(batch)                       # step (B), once
        response = self._execute_batch_and_sign(batch)  # step (C), shared
        out = response.encode_wire()
        self._bump("bytes_out", len(out))
        self._bump("batches_served")
        self._bump("batch_queries_served", len(batch.calls))
        return out

    def _verify_batch(self, batch: BatchRequest) -> BatchRequest:
        if batch.version != BATCH_PROTOCOL_VERSION:
            self._bump("requests_rejected")
            raise ServeError(
                f"unsupported batch protocol version {batch.version} "
                f"(this server speaks {BATCH_PROTOCOL_VERSION})"
            )
        channel, lock = self._channel_and_lock(batch.alpha)
        if channel is None:
            self._bump("requests_rejected")
            raise ServeError(f"unknown channel {batch.alpha.hex()}")
        try:
            batch.verify(expected_sender=channel.light_client)
        except MessageError as exc:
            self._bump("requests_rejected")
            raise ServeError(f"batch verification failed: {exc}") from exc
        price = self.fee_schedule.batch_price(batch.calls)
        with lock:
            previous = channel.latest_amount
            try:
                channel.accept_request_payment(
                    batch, min_increment=price, queries=len(batch.calls),
                )
            except ChannelError as exc:
                self._bump("requests_rejected")
                raise ServeError(f"payment rejected: {exc}") from exc
            earned = channel.latest_amount - previous
        self._bump("fees_earned", earned)
        return batch

    def _execute_batch_and_sign(self, batch: BatchRequest) -> BatchResponse:
        if self.node.chain.get_block_by_hash(batch.h_b) is None:
            message = f"unknown reference block {batch.h_b.hex()[:16]}"
            return BatchResponse.build(
                alpha=batch.alpha, request=batch, m_b=self.node.head_number(),
                statuses=[ResponseStatus.ERROR] * len(batch.calls),
                results=[_error_result(message)] * len(batch.calls),
                proof=[], key=self.key, status=ResponseStatus.ERROR,
            )
        m_b = self.node.head_number()  # ONE snapshot for the whole batch
        statuses: list[int] = []
        results: list[bytes] = []
        pool: list[bytes] = []
        seen: set[bytes] = set()
        for call in batch.calls:
            status, result, proof = self._execute_batch_item(call, m_b)
            statuses.append(status)
            results.append(result)
            for node in proof:  # shared-node dedup: the multiproof
                node_hash = keccak256(node)
                if node_hash not in seen:
                    seen.add(node_hash)
                    pool.append(node)
        return BatchResponse.build(
            alpha=batch.alpha, request=batch, m_b=m_b, statuses=statuses,
            results=results, proof=pool, key=self.key,
        )

    def _execute_batch_item(self, call: RpcCall,
                            m_b: int) -> tuple[int, bytes, list[bytes]]:
        if call.method in _NOT_BATCHABLE:
            return (ResponseStatus.ERROR,
                    _error_result(f"{call.method} is not batchable"), [])
        violation = self._range_violation(call)
        if violation is not None:
            return ResponseStatus.ERROR, _error_result(violation), []
        if call.method == "parp_channelStatus":
            result, proof = self._channel_status(call)
            return ResponseStatus.OK, result, proof
        try:
            result, proof = self._execute_cached(call, m_b)
        except QueryError as exc:
            return ResponseStatus.ERROR, _error_result(str(exc)), []
        return ResponseStatus.OK, result, proof

    # ------------------------------------------------------------------ #
    # Proof of Serving (§VIII extension, receipts)
    # ------------------------------------------------------------------ #

    def serving_receipt(self, alpha: bytes):
        """The channel's current (α, a, σ_a) packaged as a serving receipt."""
        from .proof_of_serving import ServingReceipt

        channel = self.channels.get(alpha)
        if channel is None:
            raise ServeError(f"unknown channel {alpha.hex()}")
        return ServingReceipt(
            alpha=channel.alpha, full_node=self.address,
            light_client=channel.light_client, amount=channel.latest_amount,
            signature=channel.latest_sig or b"",
            queries=channel.queries_served,
        )

    # ------------------------------------------------------------------ #
    # Redemption / closure (FN-initiated, §IV-E.4)
    # ------------------------------------------------------------------ #

    def build_close_transaction(self, alpha: bytes, nonce: int,
                                gas_price: int = 12 * 10 ** 9,
                                gas_limit: int = 300_000) -> Transaction:
        """Build the FN's CloseChannel transaction with the latest payment
        proof — this is how the node redeems its earnings."""
        from ..chain.transaction import UnsignedTransaction
        from ..vm.abi import encode_call

        channel = self.channels.get(alpha)
        if channel is None:
            raise ServeError(f"unknown channel {alpha.hex()}")
        alpha_b, amount, sig = channel.redeemable_state()
        return UnsignedTransaction(
            nonce=nonce, gas_price=gas_price, gas_limit=gas_limit,
            to=CHANNELS_MODULE_ADDRESS, value=0,
            data=encode_call("close_channel", [alpha_b, amount, sig]),
        ).sign(self.key)

    def mark_closed(self, alpha: bytes) -> None:
        channel, lock = self._channel_and_lock(alpha)
        if channel is not None:
            with lock:
                channel.closed = True

    def __repr__(self) -> str:
        return (
            f"FullNodeServer(addr={self.address.hex()[:10]}…, "
            f"channels={len(self.channels)}, served={self.stats.requests_served})"
        )


def _error_result(message: str) -> bytes:
    """The canonical signed-error result payload."""
    return rlp.encode([b"error", message.encode("utf-8")])
