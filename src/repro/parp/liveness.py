"""Channel liveness monitoring (paper §V-C).

"To facilitate a light client to monitor the payment channel's liveness,
for example, if the payment channel is closed secretly by a full node, LC
periodically sends a request to FN asking for P.T.  By getting block header
information from other sources in the network … a light client can verify
the liveness of a channel."

The monitor alternates a cheap unverified probe with a verified storage
proof read of the CMM status slot; any divergence between what the FN
*says* and what the chain *proves* is flagged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .client import LightClientSession, SessionError
from .constants import LIVENESS_PERIOD_SECONDS
from .states import ChannelStatus

__all__ = ["LivenessAlert", "LivenessObservation", "LivenessMonitor"]


@dataclass(frozen=True)
class LivenessObservation:
    """One probe round."""

    time: float
    claimed_status: Optional[int]    # what the FN answered (None: probe failed)
    verified_status: Optional[int]   # what the chain proves (None: unchecked)

    @property
    def divergent(self) -> bool:
        return (
            self.claimed_status is not None
            and self.verified_status is not None
            and self.claimed_status != self.verified_status
        )


class LivenessAlert(Exception):
    """The channel is no longer live (or the FN lied about it)."""

    def __init__(self, observation: LivenessObservation, reason: str) -> None:
        super().__init__(reason)
        self.observation = observation


@dataclass
class LivenessMonitor:
    """Periodic channel-status probing for a bonded session."""

    session: LightClientSession
    period: float = LIVENESS_PERIOD_SECONDS
    verify_every: int = 2          # every k-th probe uses the verified path
    observations: list[LivenessObservation] = field(default_factory=list)
    _probes: int = 0

    def due(self, now: float) -> bool:
        if not self.observations:
            return True
        return now - self.observations[-1].time >= self.period

    def probe(self, now: float) -> LivenessObservation:
        """One liveness round; raises :class:`LivenessAlert` on problems."""
        self._probes += 1
        claimed: Optional[int] = None
        verified: Optional[int] = None
        try:
            claimed = self.session.channel_status_fast()
        except SessionError:
            claimed = None
        if self._probes % self.verify_every == 0 or claimed != ChannelStatus.OPEN.value:
            try:
                verified = self.session.channel_status_verified()
            except SessionError:
                verified = None
        observation = LivenessObservation(
            time=now, claimed_status=claimed, verified_status=verified,
        )
        self.observations.append(observation)

        if observation.divergent:
            raise LivenessAlert(
                observation,
                f"full node claims status {claimed} but the chain proves "
                f"{verified} — channel manipulated secretly",
            )
        effective = verified if verified is not None else claimed
        if effective is None:
            raise LivenessAlert(observation, "both liveness probes failed")
        if effective != ChannelStatus.OPEN.value:
            raise LivenessAlert(
                observation,
                f"channel is no longer open (status {effective})",
            )
        return observation
