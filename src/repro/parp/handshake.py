"""The PARP handshake (Algorithm 1, Initialization phase).

Before any channel exists, the light client and full node agree on the
connection: the LC announces itself (``HANDSHAKE``), the FN answers with a
signed, expiring consent (``HSCONFIRM`` carrying ``Sign((LC ‖ expiryDate),
sk_FN)``).  That signature is the FN's *commitment to serve* — the CMM
refuses to open a channel without it, which is what makes channel creation
a mutual-consent act even though only the LC deposits funds (§V-B.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto import Signature, SignatureError, keccak256, recover_address
from ..crypto.keys import Address, PrivateKey
from .constants import ALPHA_BYTES
from .messages import handshake_digest

__all__ = ["HandshakeError", "Handshake", "HandshakeConfirm", "OpenChannelReceipt"]


class HandshakeError(Exception):
    """Raised when a handshake message fails validation."""


@dataclass(frozen=True)
class Handshake:
    """``msg ⟨HANDSHAKE, LC⟩`` — the light client announces itself."""

    light_client: Address


@dataclass(frozen=True)
class HandshakeConfirm:
    """``msg ⟨HSCONFIRM, pk_FN, expiryDate, Sign((LC ‖ expiryDate), sk_FN)⟩``."""

    full_node: Address
    expiry: int          # unix timestamp after which the consent is void
    signature: bytes     # 65-byte recoverable signature

    @classmethod
    def build(cls, fn_key: PrivateKey, light_client: Address,
              expiry: int) -> "HandshakeConfirm":
        signature = fn_key.sign(handshake_digest(light_client, expiry)).to_bytes()
        return cls(full_node=fn_key.address, expiry=expiry, signature=signature)

    def verify(self, light_client: Address) -> None:
        """Line 11 of Algorithm 1: check the confirmation signature."""
        try:
            signer = recover_address(
                handshake_digest(light_client, self.expiry),
                Signature.from_bytes(self.signature),
            )
        except (SignatureError, ValueError) as exc:
            raise HandshakeError(f"malformed confirmation signature: {exc}") from exc
        if signer != self.full_node:
            raise HandshakeError("confirmation was not signed by the full node")


@dataclass(frozen=True)
class OpenChannelReceipt:
    """``TxReceipt ⟨OpenChannel, Sign(channelId, sk_FN), channelId⟩``.

    After relaying the LC's OpenChannel transaction, the full node returns
    the assigned channel id counter-signed — the LC's proof that the FN
    acknowledges the channel (Algorithm 1, line 17).
    """

    channel_id: bytes
    signature: bytes

    @classmethod
    def build(cls, fn_key: PrivateKey, channel_id: bytes) -> "OpenChannelReceipt":
        if len(channel_id) != ALPHA_BYTES:
            raise HandshakeError(f"channel id must be {ALPHA_BYTES} bytes")
        signature = fn_key.sign(keccak256(channel_id)).to_bytes()
        return cls(channel_id=channel_id, signature=signature)

    def verify(self, full_node: Address) -> None:
        """Line 18 of Algorithm 1: check the channel-id signature."""
        if len(self.channel_id) != ALPHA_BYTES:
            raise HandshakeError(f"channel id must be {ALPHA_BYTES} bytes")
        try:
            signer = recover_address(
                keccak256(self.channel_id), Signature.from_bytes(self.signature)
            )
        except (SignatureError, ValueError) as exc:
            raise HandshakeError(f"malformed receipt signature: {exc}") from exc
        if signer != full_node:
            raise HandshakeError("channel receipt was not signed by the full node")
