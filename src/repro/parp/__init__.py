"""PARP — the Permissionless Accountable RPC Protocol (the paper's core).

Public API tour:

* :class:`LightClientSession` — connect, pay-per-request, verify, close.
* :class:`FullNodeServer` — the serving engine a staked full node runs.
* :class:`WitnessService` — submits fraud proofs for rewards.
* :mod:`repro.parp.messages` — the wire format of Fig. 3.
* :mod:`repro.parp.verification` — the §V-D response classification.

Attributes resolve lazily (PEP 562): the on-chain modules in
:mod:`repro.contracts` import PARP wire-format submodules, so eagerly
importing the whole protocol stack here would create an import cycle.
"""

from importlib import import_module

_EXPORTS = {
    # client
    "LightClientSession": "client", "ServerEndpoint": "client",
    "RequestOutcome": "client", "SessionError": "client",
    "InvalidResponse": "client", "FraudDetected": "client",
    "ServerOverloaded": "client",
    "BatchItem": "client", "BatchOutcome": "client",
    "PendingRequest": "client", "PendingBatch": "client",
    # server
    "FullNodeServer": "server", "ServeError": "server", "ServerStats": "server",
    # admission
    "AdmissionConfig": "admission", "AdmissionController": "admission",
    "AdmissionDecision": "admission",
    # channel state
    "ClientChannel": "channel", "ServerChannel": "channel", "ChannelError": "channel",
    # handshake
    "Handshake": "handshake", "HandshakeConfirm": "handshake",
    "OpenChannelReceipt": "handshake", "HandshakeError": "handshake",
    # messages
    "PARPRequest": "messages", "PARPResponse": "messages", "RpcCall": "messages",
    "BatchRequest": "messages", "BatchResponse": "messages",
    "ResponseStatus": "messages", "MessageError": "messages",
    "OverloadedReply": "messages",
    # pricing
    "FeeSchedule": "pricing", "FlatFeeSchedule": "pricing",
    "CallBasedFeeSchedule": "pricing", "DEFAULT_FEE_SCHEDULE": "pricing",
    "REFERENCE_BASKET": "pricing",
    "RepricedFeeSchedule": "pricing", "load_multiplier": "pricing",
    "MULTIPLIER_SCALE": "pricing",
    # marketplace
    "Marketplace": "marketplace", "MarketplaceClient": "marketplace",
    "MarketplaceError": "marketplace", "MarketplaceStats": "marketplace",
    "ServerAdvertisement": "marketplace", "HedgeAttempt": "marketplace",
    "NoServerForKey": "marketplace", "ShardScatterError": "marketplace",
    "ScatterOutcome": "marketplace", "ShardLeg": "marketplace",
    # sharding
    "shard_key_of_call": "sharding", "STATE_KEYED_METHODS": "sharding",
    # reputation
    "ReputationLedger": "reputation", "ReputationEvent": "reputation",
    "EVENT_WEIGHTS": "reputation", "EVENT_KINDS": "reputation",
    "EVENT_SERVED_OK": "reputation", "EVENT_CHANNEL_SETTLED": "reputation",
    "EVENT_INVALID_RESPONSE": "reputation", "EVENT_FRAUD_DETECTED": "reputation",
    "EVENT_FRAUD_SLASHED": "reputation", "EVENT_EQUIVOCATION": "reputation",
    "EVENT_TIMEOUT": "reputation", "EVENT_VERSION_MISMATCH": "reputation",
    "EVENT_OVERLOADED": "reputation", "SOFT_EVENT_KINDS": "reputation",
    # fraud proofs
    "FraudProofPackage": "fraudproof", "FraudProofError": "fraudproof",
    "WitnessService": "fraudproof", "build_fraud_package": "fraudproof",
    # verification
    "VerificationReport": "verification", "classify_response": "verification",
    "classify_batch_response": "verification",
    # states
    "LightClientState": "states", "FullNodeState": "states",
    "ChannelStatus": "states", "ResponseClass": "states",
    # constants
    "MIN_FULL_NODE_DEPOSIT": "constants", "DISPUTE_WINDOW_BLOCKS": "constants",
    "REQUEST_OVERHEAD_BYTES": "constants", "RESPONSE_OVERHEAD_BYTES": "constants",
    "BATCH_PROTOCOL_VERSION": "constants",
    "DEFAULT_SELECTION_THRESHOLD": "constants",
    "DEFAULT_MIN_SESSIONS": "constants", "DEFAULT_CHANNEL_BUDGET": "constants",
    # proof of serving
    "ServingReceipt": "proof_of_serving", "ReceiptValidator": "proof_of_serving",
    "EpochClaim": "proof_of_serving", "RewardPool": "proof_of_serving",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.parp' has no attribute {name!r}")
    module = import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
