"""PARP wire messages: the request/response structures of Fig. 3.

A request is ``req = (α, h_B, a, γ, h_req, σ_a, σ_req)``:

* ``α``     — channel identifier (16 bytes),
* ``h_B``   — most recent block hash known to the light client,
* ``a``     — *cumulative* payment amount (must be monotone per channel),
* ``γ``     — the wrapped base-layer RPC call,
* ``h_req`` — ``keccak256(α ‖ h_B ‖ a ‖ γ)``,
* ``σ_a``   — LC signature over ``keccak256(α ‖ a)`` (the micropayment —
  this is what the full node redeems on-chain),
* ``σ_req`` — LC signature over ``h_req`` (binds the payment to the call,
  needed for fraud proofs).

A response is ``res = (α, m_B, a, R(γ), π_γ, h_req, σ_req, σ_res)`` where
``σ_res`` signs ``h_res = keccak256(α ‖ status ‖ m_B ‖ a ‖ rlp([R, π]) ‖
h_req ‖ σ_req)``.  On the wire the response omits ``α`` (the session is
channel-scoped) but ``α`` stays in the signed pre-image, so the 187-byte
metadata figure of Table II is met while fraud proofs remain α-bound; the
*fraud blob* (`encode_for_fraud`) re-attaches α explicitly for on-chain
decoding, mirroring ``decodeResponse`` in Algorithm 2.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Optional, Sequence

from ..crypto import Signature, SignatureError, keccak256, recover_address
from ..crypto.keys import Address, PrivateKey
from ..rlp import codec as rlp
from .constants import (
    ALPHA_BYTES,
    AMOUNT_BYTES,
    BATCH_REQUEST_OVERHEAD_BYTES,
    BATCH_RESPONSE_OVERHEAD_BYTES,
    HASH_BYTES,
    HEIGHT_BYTES,
    MAX_AMOUNT,
    MILLIS_BYTES,
    OVERLOAD_OVERHEAD_BYTES,
    REQUEST_OVERHEAD_BYTES,
    RESPONSE_OVERHEAD_BYTES,
    SIGNATURE_BYTES,
    STATUS_BYTES,
)

__all__ = [
    "MessageError",
    "RpcCall",
    "PARPRequest",
    "PARPResponse",
    "BatchRequest",
    "BatchResponse",
    "OverloadedReply",
    "ResponseStatus",
    "payment_digest",
    "payment_preimage",
    "handshake_digest",
    "handshake_preimage",
    "request_digest",
    "batch_request_digest",
    "response_digest",
    "response_preimage",
    "overload_digest",
    "overload_preimage",
]


class MessageError(ValueError):
    """Raised on malformed PARP wire data."""


class ResponseStatus:
    """Response status byte values."""

    OK = 0
    ERROR = 1       # base-layer RPC error (e.g. unknown method); still signed
    OVERLOADED = 2  # admission shed: a signed refusal, not a served response


def _encode_amount(amount: int) -> bytes:
    if not 0 <= amount <= MAX_AMOUNT:
        raise MessageError(f"payment amount {amount} out of u128 range")
    return amount.to_bytes(AMOUNT_BYTES, "big")


def _encode_height(height: int) -> bytes:
    if not 0 <= height < (1 << (8 * HEIGHT_BYTES)):
        raise MessageError(f"block height {height} out of u64 range")
    return height.to_bytes(HEIGHT_BYTES, "big")


def payment_preimage(alpha: bytes, amount: int) -> bytes:
    """Bytes hashed for σ_a; shared with the on-chain CMM (metered there)."""
    if len(alpha) != ALPHA_BYTES:
        raise MessageError(f"channel id must be {ALPHA_BYTES} bytes")
    return alpha + _encode_amount(amount)


def payment_digest(alpha: bytes, amount: int) -> bytes:
    """``Hash(α, a)`` — the digest behind σ_a; also checked on-chain by the
    Channels Management Module when redeeming or disputing."""
    return keccak256(payment_preimage(alpha, amount))


def handshake_preimage(light_client: Address, expiry: int) -> bytes:
    """Bytes behind the handshake confirmation ``Sign((LC ‖ expiryDate),
    sk_FN)`` of Algorithm 1; verified again on-chain when opening a channel."""
    if expiry < 0 or expiry >= (1 << 64):
        raise MessageError("handshake expiry out of u64 range")
    return light_client.to_bytes() + expiry.to_bytes(8, "big")


def handshake_digest(light_client: Address, expiry: int) -> bytes:
    return keccak256(handshake_preimage(light_client, expiry))


def request_digest(alpha: bytes, h_b: bytes, amount: int, call_bytes: bytes) -> bytes:
    """``h_req = Hash(α, h_B, a, γ)``."""
    if len(alpha) != ALPHA_BYTES or len(h_b) != HASH_BYTES:
        raise MessageError("bad α or h_B length in request digest")
    return keccak256(alpha + h_b + _encode_amount(amount) + call_bytes)


def batch_request_digest(alpha: bytes, h_b: bytes, amount: int, version: int,
                         calls_bytes: bytes) -> bytes:
    """``h_req = Hash(α, h_B, a, v, rlp([γ_1 … γ_N]))`` for a batch.

    The version byte is bound into the digest so a server cannot silently
    downgrade the batch semantics the client signed for.
    """
    if len(alpha) != ALPHA_BYTES or len(h_b) != HASH_BYTES:
        raise MessageError("bad α or h_B length in batch request digest")
    if not 0 <= version < 256:
        raise MessageError(f"batch protocol version {version} out of u8 range")
    return keccak256(
        alpha + h_b + _encode_amount(amount) + bytes([version]) + calls_bytes
    )


def response_preimage(alpha: bytes, status: int, m_b: int, amount: int,
                      payload: bytes, h_req: bytes, sig_req: bytes) -> bytes:
    """Bytes behind h_res; shared with the on-chain FDM (metered there)."""
    if len(alpha) != ALPHA_BYTES:
        raise MessageError(f"channel id must be {ALPHA_BYTES} bytes")
    return (
        alpha + bytes([status]) + _encode_height(m_b) + _encode_amount(amount)
        + payload + h_req + sig_req
    )


def response_digest(alpha: bytes, status: int, m_b: int, amount: int,
                    payload: bytes, h_req: bytes, sig_req: bytes) -> bytes:
    """``h_res = Hash(α, status, m_B, a, rlp([R, π]), h_req, σ_req)``."""
    return keccak256(
        response_preimage(alpha, status, m_b, amount, payload, h_req, sig_req)
    )


def _encode_millis(value: int, what: str) -> bytes:
    if not 0 <= value < (1 << (8 * MILLIS_BYTES)):
        raise MessageError(f"{what} {value} out of u32 fixed-point range")
    return value.to_bytes(MILLIS_BYTES, "big")


def overload_preimage(m_b: int, load_millis: int, retry_after_millis: int,
                      fee_multiplier_millis: int, h_req: bytes) -> bytes:
    """Bytes behind σ_ovl — the full Overloaded reply, h_req included, so a
    shed of request X cannot be replayed as a shed of request Y."""
    if len(h_req) != HASH_BYTES:
        raise MessageError("bad h_req length in overload digest")
    return (
        bytes([ResponseStatus.OVERLOADED]) + _encode_height(m_b)
        + _encode_millis(load_millis, "load factor")
        + _encode_millis(retry_after_millis, "retry-after hint")
        + _encode_millis(fee_multiplier_millis, "fee multiplier")
        + h_req
    )


def overload_digest(m_b: int, load_millis: int, retry_after_millis: int,
                    fee_multiplier_millis: int, h_req: bytes) -> bytes:
    """``h_ovl = Hash(status, m_B, load, retry_after, fee_mult, h_req)``."""
    return keccak256(overload_preimage(
        m_b, load_millis, retry_after_millis, fee_multiplier_millis, h_req,
    ))


# --------------------------------------------------------------------------- #
# RPC call γ
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class RpcCall:
    """The base-layer RPC call γ wrapped inside a PARP request.

    Parameters are RLP items (bytes / nested lists); helpers convert common
    Python values.  The canonical encoding is ``rlp([method, param, …])``.
    """

    method: str
    params: tuple[rlp.Item, ...] = ()

    @classmethod
    def create(cls, method: str, *params: Any) -> "RpcCall":
        return cls(method=method, params=tuple(_param_to_item(p) for p in params))

    def encode(self) -> bytes:
        return rlp.encode([self.method.encode("utf-8"), *self.params])

    @classmethod
    def decode(cls, raw: bytes) -> "RpcCall":
        try:
            item = rlp.decode(raw)
        except rlp.RLPError as exc:
            raise MessageError(f"undecodable RPC call: {exc}") from exc
        if not isinstance(item, list) or not item or not isinstance(item[0], bytes):
            raise MessageError("RPC call must be rlp([method, params…])")
        try:
            method = item[0].decode("utf-8")
        except UnicodeDecodeError as exc:
            raise MessageError("RPC method name is not UTF-8") from exc
        return cls(method=method, params=tuple(item[1:]))

    def param_bytes(self, index: int, exact: int | None = None) -> bytes:
        if index >= len(self.params) or not isinstance(self.params[index], bytes):
            raise MessageError(f"{self.method}: missing bytes param {index}")
        value = self.params[index]
        if exact is not None and len(value) != exact:
            raise MessageError(
                f"{self.method}: param {index} must be {exact} bytes, got {len(value)}"
            )
        return value

    def param_int(self, index: int) -> int:
        raw = self.param_bytes(index)
        try:
            return rlp.decode_int(raw)
        except rlp.RLPError as exc:
            raise MessageError(f"{self.method}: bad integer param {index}") from exc

    def __repr__(self) -> str:
        return f"RpcCall({self.method}, {len(self.params)} params)"


def _param_to_item(value: Any) -> rlp.Item:
    if isinstance(value, bool):
        return rlp.encode_int(int(value))
    if isinstance(value, int):
        if value < 0:
            raise MessageError("negative RPC parameters are not encodable")
        return rlp.encode_int(value)
    if isinstance(value, Address):
        return value.to_bytes()
    if isinstance(value, (bytes, bytearray)):
        return bytes(value)
    if isinstance(value, str):
        return value.encode("utf-8")
    if isinstance(value, (list, tuple)):
        return [_param_to_item(v) for v in value]
    raise MessageError(f"cannot encode RPC parameter of type {type(value).__name__}")


# --------------------------------------------------------------------------- #
# Request
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class PARPRequest:
    """A signed PARP request (Fig. 3, left)."""

    alpha: bytes
    h_b: bytes
    a: int
    call: RpcCall
    h_req: bytes
    sig_a: bytes
    sig_req: bytes

    @classmethod
    def build(cls, alpha: bytes, h_b: bytes, amount: int, call: RpcCall,
              key: PrivateKey) -> "PARPRequest":
        """Construct and sign a request (light-client side, step (A))."""
        call_bytes = call.encode()
        h_req = request_digest(alpha, h_b, amount, call_bytes)
        sig_a = key.sign(payment_digest(alpha, amount)).to_bytes()
        sig_req = key.sign(h_req).to_bytes()
        return cls(alpha=alpha, h_b=h_b, a=amount, call=call,
                   h_req=h_req, sig_a=sig_a, sig_req=sig_req)

    # -- wire ------------------------------------------------------------- #

    def encode_wire(self) -> bytes:
        """226 bytes of PARP metadata followed by the base RPC call γ."""
        return (
            self.alpha + self.h_b + _encode_amount(self.a) + self.h_req
            + self.sig_a + self.sig_req + self.call.encode()
        )

    @classmethod
    def decode_wire(cls, raw: bytes) -> "PARPRequest":
        if len(raw) < REQUEST_OVERHEAD_BYTES:
            raise MessageError(
                f"request too short: {len(raw)} < {REQUEST_OVERHEAD_BYTES}"
            )
        pos = 0
        alpha = raw[pos:pos + ALPHA_BYTES]; pos += ALPHA_BYTES
        h_b = raw[pos:pos + HASH_BYTES]; pos += HASH_BYTES
        amount = int.from_bytes(raw[pos:pos + AMOUNT_BYTES], "big"); pos += AMOUNT_BYTES
        h_req = raw[pos:pos + HASH_BYTES]; pos += HASH_BYTES
        sig_a = raw[pos:pos + SIGNATURE_BYTES]; pos += SIGNATURE_BYTES
        sig_req = raw[pos:pos + SIGNATURE_BYTES]; pos += SIGNATURE_BYTES
        call = RpcCall.decode(raw[pos:])
        return cls(alpha=alpha, h_b=h_b, a=amount, call=call,
                   h_req=h_req, sig_a=sig_a, sig_req=sig_req)

    # -- verification -------------------------------------------------------- #

    def expected_preimage(self) -> bytes:
        """The exact bytes behind h_req (for metered on-chain recomputation)."""
        return self.alpha + self.h_b + _encode_amount(self.a) + self.call.encode()

    def expected_digest(self) -> bytes:
        return request_digest(self.alpha, self.h_b, self.a, self.call.encode())

    def verify(self, expected_sender: Optional[Address] = None) -> Address:
        """Full-node-side request verification (step (B) in Fig. 5).

        Checks the digest reconstruction and both signatures; returns the
        recovered light-client address.
        """
        if self.h_req != self.expected_digest():
            raise MessageError("request hash does not match request contents")
        try:
            req_signer = recover_address(self.h_req, Signature.from_bytes(self.sig_req))
            pay_signer = recover_address(
                payment_digest(self.alpha, self.a), Signature.from_bytes(self.sig_a)
            )
        except SignatureError as exc:
            raise MessageError(f"bad request signature: {exc}") from exc
        if req_signer != pay_signer:
            raise MessageError("request and payment signed by different keys")
        if expected_sender is not None and req_signer != expected_sender:
            raise MessageError("request signer is not the channel's light client")
        return req_signer

    @property
    def wire_overhead(self) -> int:
        """PARP metadata bytes added on top of the base RPC call (Table II)."""
        return REQUEST_OVERHEAD_BYTES


# --------------------------------------------------------------------------- #
# Response
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class PARPResponse:
    """A signed PARP response (Fig. 3, right)."""

    status: int
    m_b: int
    a: int
    result: bytes                 # R(γ): rlp-encoded result payload
    proof: tuple[bytes, ...]      # π_γ: Merkle proof nodes (may be empty)
    h_req: bytes
    sig_req: bytes                # echo of the request signature
    sig_res: bytes

    @staticmethod
    def _payload(result: bytes, proof: Sequence[bytes]) -> bytes:
        return rlp.encode([result, list(proof)])

    @classmethod
    def build(cls, alpha: bytes, request: PARPRequest, m_b: int, result: bytes,
              proof: Sequence[bytes], key: PrivateKey,
              status: int = ResponseStatus.OK) -> "PARPResponse":
        """Construct and sign a response (full-node side, step (C))."""
        payload = cls._payload(result, proof)
        h_res = response_digest(
            alpha, status, m_b, request.a, payload, request.h_req, request.sig_req
        )
        return cls(
            status=status, m_b=m_b, a=request.a, result=result,
            proof=tuple(proof), h_req=request.h_req, sig_req=request.sig_req,
            sig_res=key.sign(h_res).to_bytes(),
        )

    # -- digests ------------------------------------------------------------ #

    def preimage(self, alpha: bytes) -> bytes:
        """The exact bytes behind h_res (for metered on-chain recomputation)."""
        payload = self._payload(self.result, self.proof)
        return response_preimage(
            alpha, self.status, self.m_b, self.a, payload, self.h_req, self.sig_req
        )

    def digest(self, alpha: bytes) -> bytes:
        """Recompute h_res for the given channel id."""
        payload = self._payload(self.result, self.proof)
        return response_digest(
            alpha, self.status, self.m_b, self.a, payload, self.h_req, self.sig_req
        )

    def signer(self, alpha: bytes) -> Address:
        """Recover the full-node address that signed this response."""
        try:
            return recover_address(self.digest(alpha), Signature.from_bytes(self.sig_res))
        except SignatureError as exc:
            raise MessageError(f"bad response signature: {exc}") from exc

    # -- wire ------------------------------------------------------------- #

    def encode_wire(self) -> bytes:
        """187 bytes of metadata followed by rlp([R(γ), π_γ])."""
        return (
            bytes([self.status]) + _encode_height(self.m_b) + _encode_amount(self.a)
            + self.h_req + self.sig_req + self.sig_res
            + self._payload(self.result, self.proof)
        )

    @classmethod
    def decode_wire(cls, raw: bytes) -> "PARPResponse":
        if len(raw) < RESPONSE_OVERHEAD_BYTES:
            raise MessageError(
                f"response too short: {len(raw)} < {RESPONSE_OVERHEAD_BYTES}"
            )
        pos = 0
        status = raw[pos]; pos += STATUS_BYTES
        m_b = int.from_bytes(raw[pos:pos + HEIGHT_BYTES], "big"); pos += HEIGHT_BYTES
        amount = int.from_bytes(raw[pos:pos + AMOUNT_BYTES], "big"); pos += AMOUNT_BYTES
        h_req = raw[pos:pos + HASH_BYTES]; pos += HASH_BYTES
        sig_req = raw[pos:pos + SIGNATURE_BYTES]; pos += SIGNATURE_BYTES
        sig_res = raw[pos:pos + SIGNATURE_BYTES]; pos += SIGNATURE_BYTES
        try:
            payload = rlp.decode(raw[pos:])
        except rlp.RLPError as exc:
            raise MessageError(f"undecodable response payload: {exc}") from exc
        if (not isinstance(payload, list) or len(payload) != 2
                or not isinstance(payload[0], bytes)
                or not isinstance(payload[1], list)):
            raise MessageError("response payload must be rlp([result, proof])")
        proof_nodes = []
        for node in payload[1]:
            if not isinstance(node, bytes):
                raise MessageError("proof nodes must be byte strings")
            proof_nodes.append(node)
        return cls(status=status, m_b=m_b, a=amount, result=payload[0],
                   proof=tuple(proof_nodes), h_req=h_req,
                   sig_req=sig_req, sig_res=sig_res)

    # -- fraud blob (on-chain format, α re-attached) ------------------------- #

    def encode_for_fraud(self, alpha: bytes) -> bytes:
        """Serialization submitted to the Fraud Detection Module."""
        if len(alpha) != ALPHA_BYTES:
            raise MessageError(f"channel id must be {ALPHA_BYTES} bytes")
        return alpha + self.encode_wire()

    @classmethod
    def decode_for_fraud(cls, raw: bytes) -> tuple[bytes, "PARPResponse"]:
        if len(raw) < ALPHA_BYTES:
            raise MessageError("fraud blob too short for a channel id")
        return raw[:ALPHA_BYTES], cls.decode_wire(raw[ALPHA_BYTES:])

    # -- sizes (Table II) ----------------------------------------------------- #

    @property
    def wire_overhead(self) -> int:
        """Metadata bytes (187) + Merkle proof bytes, per Table II."""
        proof_bytes = len(rlp.encode(list(self.proof))) if self.proof else 0
        return RESPONSE_OVERHEAD_BYTES + proof_bytes

    def with_result(self, result: bytes) -> "PARPResponse":
        """A tampered copy (used by tests and the malicious-node examples)."""
        return replace(self, result=result)


# --------------------------------------------------------------------------- #
# Overloaded reply (admission control)
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class OverloadedReply:
    """A signed, typed refusal: the server's admission queue is full.

    Sent *instead of* a served response when a request (or batch) arrives
    past the admission threshold.  It is deliberately not a
    :class:`PARPResponse` — the client paid nothing for it (shedding happens
    before the payment is accepted, so the channel's server-side cumulative
    amount does not advance) and it proves nothing about state.  What the
    signature buys is **attribution**: the overload signal demonstrably came
    from the serving key, so clients can treat it as a soft failover hint
    without opening a spoofing channel (a MITM can't demote a healthy
    server by forging "I'm overloaded" replies).

    Fixed-point u32 fields (thousandths):

    * ``load_millis``           — load factor at decision time (1000 = the
      admission queue is exactly full),
    * ``retry_after_millis``    — jittered seconds until the queue is
      expected to have drained enough to admit this request's cost,
    * ``fee_multiplier_millis`` — the repriced quote (matches the
      republished :class:`~repro.parp.pricing.RepricedFeeSchedule`).
    """

    m_b: int
    load_millis: int
    retry_after_millis: int
    fee_multiplier_millis: int
    h_req: bytes
    sig_ovl: bytes

    @classmethod
    def build(cls, m_b: int, load: float, retry_after: float,
              fee_multiplier: float, h_req: bytes,
              key: PrivateKey) -> "OverloadedReply":
        """Quantize, digest, and sign (server side, the shed path)."""
        limit = (1 << (8 * MILLIS_BYTES)) - 1
        load_millis = min(limit, max(0, round(load * 1000)))
        retry_millis = min(limit, max(0, round(retry_after * 1000)))
        fee_millis = min(limit, max(0, round(fee_multiplier * 1000)))
        digest = overload_digest(m_b, load_millis, retry_millis, fee_millis,
                                 h_req)
        return cls(m_b=m_b, load_millis=load_millis,
                   retry_after_millis=retry_millis,
                   fee_multiplier_millis=fee_millis, h_req=h_req,
                   sig_ovl=key.sign(digest).to_bytes())

    # -- float views ------------------------------------------------------- #

    @property
    def load(self) -> float:
        return self.load_millis / 1000.0

    @property
    def retry_after(self) -> float:
        return self.retry_after_millis / 1000.0

    @property
    def fee_multiplier(self) -> float:
        return self.fee_multiplier_millis / 1000.0

    # -- wire ------------------------------------------------------------- #

    @staticmethod
    def is_overload_wire(raw: bytes) -> bool:
        """Cheap discriminator: served responses lead with status OK/ERROR,
        an overload reply with its own status byte — one branch before the
        normal decode path, no exception control flow."""
        return (len(raw) == OVERLOAD_OVERHEAD_BYTES
                and raw[0] == ResponseStatus.OVERLOADED)

    def encode_wire(self) -> bytes:
        """118 bytes, all metadata (see OVERLOAD_OVERHEAD_BYTES)."""
        return (
            overload_preimage(self.m_b, self.load_millis,
                              self.retry_after_millis,
                              self.fee_multiplier_millis, self.h_req)
            + self.sig_ovl
        )

    @classmethod
    def decode_wire(cls, raw: bytes) -> "OverloadedReply":
        if len(raw) != OVERLOAD_OVERHEAD_BYTES:
            raise MessageError(
                f"overload reply must be {OVERLOAD_OVERHEAD_BYTES} bytes, "
                f"got {len(raw)}"
            )
        if raw[0] != ResponseStatus.OVERLOADED:
            raise MessageError(f"not an overload reply (status {raw[0]})")
        pos = STATUS_BYTES
        m_b = int.from_bytes(raw[pos:pos + HEIGHT_BYTES], "big"); pos += HEIGHT_BYTES
        load = int.from_bytes(raw[pos:pos + MILLIS_BYTES], "big"); pos += MILLIS_BYTES
        retry = int.from_bytes(raw[pos:pos + MILLIS_BYTES], "big"); pos += MILLIS_BYTES
        fee = int.from_bytes(raw[pos:pos + MILLIS_BYTES], "big"); pos += MILLIS_BYTES
        h_req = raw[pos:pos + HASH_BYTES]; pos += HASH_BYTES
        sig_ovl = raw[pos:pos + SIGNATURE_BYTES]
        return cls(m_b=m_b, load_millis=load, retry_after_millis=retry,
                   fee_multiplier_millis=fee, h_req=h_req, sig_ovl=sig_ovl)

    # -- verification ------------------------------------------------------ #

    def digest(self) -> bytes:
        return overload_digest(self.m_b, self.load_millis,
                               self.retry_after_millis,
                               self.fee_multiplier_millis, self.h_req)

    def signer(self) -> Address:
        try:
            return recover_address(self.digest(),
                                   Signature.from_bytes(self.sig_ovl))
        except SignatureError as exc:
            raise MessageError(f"bad overload signature: {exc}") from exc

    def verify(self, expected_signer: Optional[Address] = None,
               expected_h_req: Optional[bytes] = None) -> Address:
        """Client-side checks: the shed is bound to *our* request and signed
        by *our* server — anything else is an invalid response, not a soft
        failure."""
        if expected_h_req is not None and self.h_req != expected_h_req:
            raise MessageError("overload reply answers a different request")
        signer = self.signer()
        if expected_signer is not None and signer != expected_signer:
            raise MessageError(
                "overload reply signed by a key other than the serving node"
            )
        return signer


# --------------------------------------------------------------------------- #
# Batched queries (multiproof extension)
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class BatchRequest:
    """N RPC calls paid for by ONE channel update.

    Structurally a :class:`PARPRequest` whose γ is a *list* of calls and whose
    metadata is prefixed by a batch-protocol version byte.  The cumulative
    amount ``a`` covers the whole batch, so the channel advances once no
    matter how many keys the dApp fetches — and the server answers with one
    deduplicated multiproof instead of N overlapping proofs.
    """

    version: int
    alpha: bytes
    h_b: bytes
    a: int
    calls: tuple[RpcCall, ...]
    h_req: bytes
    sig_a: bytes
    sig_req: bytes

    @staticmethod
    def _calls_bytes(calls: Sequence[RpcCall]) -> bytes:
        return rlp.encode([call.encode() for call in calls])

    @classmethod
    def build(cls, alpha: bytes, h_b: bytes, amount: int,
              calls: Sequence[RpcCall], key: PrivateKey,
              version: int) -> "BatchRequest":
        """Construct and sign a batch request (light-client side)."""
        if not calls:
            raise MessageError("a batch must contain at least one call")
        calls_bytes = cls._calls_bytes(calls)
        h_req = batch_request_digest(alpha, h_b, amount, version, calls_bytes)
        sig_a = key.sign(payment_digest(alpha, amount)).to_bytes()
        sig_req = key.sign(h_req).to_bytes()
        return cls(version=version, alpha=alpha, h_b=h_b, a=amount,
                   calls=tuple(calls), h_req=h_req, sig_a=sig_a,
                   sig_req=sig_req)

    # -- wire ------------------------------------------------------------- #

    def encode_wire(self) -> bytes:
        """227 bytes of metadata followed by rlp([γ_1 … γ_N])."""
        return (
            bytes([self.version]) + self.alpha + self.h_b
            + _encode_amount(self.a) + self.h_req + self.sig_a + self.sig_req
            + self._calls_bytes(self.calls)
        )

    @classmethod
    def decode_wire(cls, raw: bytes) -> "BatchRequest":
        if len(raw) < BATCH_REQUEST_OVERHEAD_BYTES:
            raise MessageError(
                f"batch request too short: {len(raw)} < "
                f"{BATCH_REQUEST_OVERHEAD_BYTES}"
            )
        pos = 0
        version = raw[pos]; pos += 1
        alpha = raw[pos:pos + ALPHA_BYTES]; pos += ALPHA_BYTES
        h_b = raw[pos:pos + HASH_BYTES]; pos += HASH_BYTES
        amount = int.from_bytes(raw[pos:pos + AMOUNT_BYTES], "big"); pos += AMOUNT_BYTES
        h_req = raw[pos:pos + HASH_BYTES]; pos += HASH_BYTES
        sig_a = raw[pos:pos + SIGNATURE_BYTES]; pos += SIGNATURE_BYTES
        sig_req = raw[pos:pos + SIGNATURE_BYTES]; pos += SIGNATURE_BYTES
        try:
            item = rlp.decode(raw[pos:])
        except rlp.RLPError as exc:
            raise MessageError(f"undecodable batch call list: {exc}") from exc
        if not isinstance(item, list) or not item:
            raise MessageError("batch call list must be a non-empty rlp list")
        calls = []
        for encoded in item:
            if not isinstance(encoded, bytes):
                raise MessageError("batch calls must be rlp-encoded byte strings")
            calls.append(RpcCall.decode(encoded))
        return cls(version=version, alpha=alpha, h_b=h_b, a=amount,
                   calls=tuple(calls), h_req=h_req, sig_a=sig_a,
                   sig_req=sig_req)

    # -- verification ------------------------------------------------------ #

    def expected_digest(self) -> bytes:
        return batch_request_digest(
            self.alpha, self.h_b, self.a, self.version,
            self._calls_bytes(self.calls),
        )

    def verify(self, expected_sender: Optional[Address] = None) -> Address:
        """Full-node-side batch verification; mirrors PARPRequest.verify."""
        if self.h_req != self.expected_digest():
            raise MessageError("batch hash does not match batch contents")
        try:
            req_signer = recover_address(self.h_req, Signature.from_bytes(self.sig_req))
            pay_signer = recover_address(
                payment_digest(self.alpha, self.a), Signature.from_bytes(self.sig_a)
            )
        except SignatureError as exc:
            raise MessageError(f"bad batch request signature: {exc}") from exc
        if req_signer != pay_signer:
            raise MessageError("batch and payment signed by different keys")
        if expected_sender is not None and req_signer != expected_sender:
            raise MessageError("batch signer is not the channel's light client")
        return req_signer

    @property
    def wire_overhead(self) -> int:
        return BATCH_REQUEST_OVERHEAD_BYTES

    def __repr__(self) -> str:
        return f"BatchRequest(v{self.version}, {len(self.calls)} calls)"


@dataclass(frozen=True)
class BatchResponse:
    """The signed answer to a :class:`BatchRequest`.

    Carries one status byte and one result payload per call, plus a single
    *shared* proof-node pool: the deduplicated union of every per-call Merkle
    proof (state, storage, transaction, and receipt trie nodes all resolve
    by keccak hash from the same pool).  Signed exactly like a single
    response, over ``payload = rlp([statuses, [R_1 …], [node_1 …]])``.
    """

    status: int                   # whole-batch status
    m_b: int
    a: int
    statuses: tuple[int, ...]     # per-call statuses
    results: tuple[bytes, ...]    # per-call R(γ_i)
    proof: tuple[bytes, ...]      # shared multiproof node pool
    h_req: bytes
    sig_req: bytes
    sig_res: bytes

    @staticmethod
    def _payload(statuses: Sequence[int], results: Sequence[bytes],
                 proof: Sequence[bytes]) -> bytes:
        return rlp.encode([bytes(statuses), list(results), list(proof)])

    @classmethod
    def build(cls, alpha: bytes, request: BatchRequest, m_b: int,
              statuses: Sequence[int], results: Sequence[bytes],
              proof: Sequence[bytes], key: PrivateKey,
              status: int = ResponseStatus.OK) -> "BatchResponse":
        """Construct and sign a batch response (full-node side)."""
        if len(statuses) != len(results):
            raise MessageError("per-call statuses and results disagree in length")
        payload = cls._payload(statuses, results, proof)
        h_res = response_digest(
            alpha, status, m_b, request.a, payload, request.h_req,
            request.sig_req,
        )
        return cls(
            status=status, m_b=m_b, a=request.a, statuses=tuple(statuses),
            results=tuple(results), proof=tuple(proof), h_req=request.h_req,
            sig_req=request.sig_req, sig_res=key.sign(h_res).to_bytes(),
        )

    # -- digests ------------------------------------------------------------ #

    def digest(self, alpha: bytes) -> bytes:
        payload = self._payload(self.statuses, self.results, self.proof)
        return response_digest(
            alpha, self.status, self.m_b, self.a, payload, self.h_req,
            self.sig_req,
        )

    def signer(self, alpha: bytes) -> Address:
        try:
            return recover_address(self.digest(alpha), Signature.from_bytes(self.sig_res))
        except SignatureError as exc:
            raise MessageError(f"bad batch response signature: {exc}") from exc

    # -- per-item view ------------------------------------------------------ #

    def item_view(self, index: int) -> PARPResponse:
        """Item ``index`` shaped as a single response over the shared pool.

        This is what lets the client (and any future on-chain batch FDM)
        reuse the per-method verifiers of :mod:`repro.parp.queries`
        unchanged: each item verifies against the same deduplicated node
        pool that authenticated every other item.
        """
        return PARPResponse(
            status=self.statuses[index], m_b=self.m_b, a=self.a,
            result=self.results[index], proof=self.proof, h_req=self.h_req,
            sig_req=self.sig_req, sig_res=self.sig_res,
        )

    def __len__(self) -> int:
        return len(self.results)

    # -- wire ------------------------------------------------------------- #

    def encode_wire(self) -> bytes:
        """187 bytes of metadata followed by rlp([statuses, results, proof])."""
        return (
            bytes([self.status]) + _encode_height(self.m_b)
            + _encode_amount(self.a) + self.h_req + self.sig_req + self.sig_res
            + self._payload(self.statuses, self.results, self.proof)
        )

    @classmethod
    def decode_wire(cls, raw: bytes) -> "BatchResponse":
        if len(raw) < BATCH_RESPONSE_OVERHEAD_BYTES:
            raise MessageError(
                f"batch response too short: {len(raw)} < "
                f"{BATCH_RESPONSE_OVERHEAD_BYTES}"
            )
        pos = 0
        status = raw[pos]; pos += STATUS_BYTES
        m_b = int.from_bytes(raw[pos:pos + HEIGHT_BYTES], "big"); pos += HEIGHT_BYTES
        amount = int.from_bytes(raw[pos:pos + AMOUNT_BYTES], "big"); pos += AMOUNT_BYTES
        h_req = raw[pos:pos + HASH_BYTES]; pos += HASH_BYTES
        sig_req = raw[pos:pos + SIGNATURE_BYTES]; pos += SIGNATURE_BYTES
        sig_res = raw[pos:pos + SIGNATURE_BYTES]; pos += SIGNATURE_BYTES
        try:
            payload = rlp.decode(raw[pos:])
        except rlp.RLPError as exc:
            raise MessageError(f"undecodable batch payload: {exc}") from exc
        if (not isinstance(payload, list) or len(payload) != 3
                or not isinstance(payload[0], bytes)
                or not isinstance(payload[1], list)
                or not isinstance(payload[2], list)):
            raise MessageError(
                "batch payload must be rlp([statuses, results, proof])"
            )
        statuses = tuple(payload[0])
        results = []
        for result in payload[1]:
            if not isinstance(result, bytes):
                raise MessageError("batch results must be byte strings")
            results.append(result)
        proof_nodes = []
        for node in payload[2]:
            if not isinstance(node, bytes):
                raise MessageError("proof nodes must be byte strings")
            proof_nodes.append(node)
        if len(statuses) != len(results):
            raise MessageError("per-call statuses and results disagree in length")
        return cls(status=status, m_b=m_b, a=amount, statuses=statuses,
                   results=tuple(results), proof=tuple(proof_nodes),
                   h_req=h_req, sig_req=sig_req, sig_res=sig_res)

    # -- sizes (Table II / Fig. 6) ---------------------------------------- #

    @property
    def wire_overhead(self) -> int:
        """Metadata bytes + shared multiproof bytes for the whole batch."""
        proof_bytes = len(rlp.encode(list(self.proof))) if self.proof else 0
        return BATCH_RESPONSE_OVERHEAD_BYTES + proof_bytes

    def with_result(self, index: int, result: bytes) -> "BatchResponse":
        """A tampered copy (tests and the malicious-node examples)."""
        results = list(self.results)
        results[index] = result
        return replace(self, results=tuple(results))
