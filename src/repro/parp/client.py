"""The PARP light-client session: the client side of the whole protocol.

Drives the lifecycle of Fig. 4 — ``IDLE → Handshaking → Unbonded → Bonded →
Unbonding → IDLE`` — over any transport that satisfies
:class:`ServerEndpoint` (the in-process server directly, or a simulated
network adapter).

The paid request path (§IV-E.3, steps (A) and (D) of Fig. 5):

1. pick the next cumulative amount ``a`` from the fee schedule,
2. pin the latest locally verified header hash ``h_B``,
3. build + sign the request (payment signature σ_a, request signature σ_req),
4. send, receive, sync any headers needed, then run the six §V-D checks,
5. VALID → hand the result to the application; INVALID → raise
   :class:`InvalidResponse` (terminate, fail over); FRAUD → assemble a fraud
   package and raise :class:`FraudDetected` (report via a witness node).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Protocol, Sequence, Union

from ..chain.header import BlockHeader
from ..chain.transaction import Transaction, UnsignedTransaction
from ..contracts.addresses import CHANNELS_MODULE_ADDRESS
from ..contracts.channels import channel_status_slot
from ..crypto.keys import Address, PrivateKey
from ..lightclient.sync import HeaderSyncer, SyncError
from ..net.futures import PendingReply
from ..rlp import codec as rlp
from ..vm.abi import encode_call
from .channel import ChannelError, ClientChannel
from .constants import (
    BATCH_PROTOCOL_VERSION,
    DEFAULT_HANDSHAKE_EXPIRY_SECONDS,
    MAX_AMOUNT,
)
from .fraudproof import FraudProofError, FraudProofPackage, build_fraud_package
from .handshake import Handshake, HandshakeConfirm, HandshakeError, OpenChannelReceipt
from .messages import (
    BatchRequest,
    BatchResponse,
    MessageError,
    OverloadedReply,
    PARPRequest,
    PARPResponse,
    ResponseStatus,
    RpcCall,
)
from .pricing import DEFAULT_FEE_SCHEDULE, FeeSchedule
from .queries import decode_balance, decode_inclusion, decode_int_result
from .states import LightClientState, ResponseClass
from .verification import (
    VerificationReport,
    classify_batch_response,
    classify_response,
)

__all__ = [
    "ServerEndpoint",
    "SessionError",
    "InvalidResponse",
    "FraudDetected",
    "ServerOverloaded",
    "RequestOutcome",
    "BatchItem",
    "BatchOutcome",
    "PendingRequest",
    "PendingBatch",
    "LightClientSession",
]

DEFAULT_GAS_PRICE = 12 * 10 ** 9
DEFAULT_GAS_LIMIT = 500_000


class ServerEndpoint(Protocol):
    """What a light client needs from a (remote) PARP full node.

    Endpoints may additionally expose the non-blocking transport contract
    ``submit(method, *args) -> PendingReply`` (see
    :class:`~repro.net.transport.SimEndpoint`); sessions probe for it via
    getattr and fall back to executing blocking calls into an
    already-resolved future, so ``begin_*``/``collect`` work against any
    endpoint — in-process servers just lose the overlap.
    """

    @property
    def address(self) -> Address: ...
    def handshake(self, msg: Handshake) -> HandshakeConfirm: ...
    def open_channel(self, raw_tx: bytes) -> OpenChannelReceipt: ...
    def serve_request(self, wire: bytes) -> bytes: ...
    def relay_transaction(self, raw_tx: bytes) -> bytes: ...
    def get_transaction_count(self, address: Address) -> int: ...
    def serve_header(self, number: int) -> Optional[BlockHeader]: ...
    def serve_head_number(self) -> int: ...
    # Batch extension — optional: clients probe ``batch_protocol_version``
    # via getattr and fall back to per-key ``serve_request`` when absent.
    def serve_batch(self, wire: bytes) -> bytes: ...
    def batch_protocol_version(self) -> int: ...


class SessionError(Exception):
    """Protocol/lifecycle errors on the client side."""


class InvalidResponse(SessionError):
    """The response failed a check that precludes a fraud proof (§IV-F:
    "It is sensible for the client to terminate the connection")."""

    def __init__(self, report: VerificationReport) -> None:
        super().__init__(f"invalid response [{report.check}]: {report.detail}")
        self.report = report


class FraudDetected(SessionError):
    """The response is provably fraudulent; carries the evidence package."""

    def __init__(self, report: VerificationReport,
                 package: Optional[FraudProofPackage]) -> None:
        super().__init__(f"fraud detected [{report.check}]: {report.detail}")
        self.report = report
        self.package = package


class ServerOverloaded(SessionError):
    """The server shed the request with a signed ``Overloaded`` reply.

    A **soft** failure: the server met the protocol — it attributably
    declined, quoted when to come back (``retry_after``) and at what price
    (``fee_multiplier``) — so callers must not slash its reputation or
    concede the payment.  The marketplace reacts with re-ranking, failover,
    or a jittered backoff retry; nothing about the channel changes.
    """

    def __init__(self, reply: OverloadedReply) -> None:
        super().__init__(
            f"server overloaded (load={reply.load:.2f}); "
            f"retry after {reply.retry_after:.3f}s "
            f"at ×{reply.fee_multiplier:.3f} fees"
        )
        self.reply = reply
        self.load = reply.load
        self.retry_after = reply.retry_after
        self.fee_multiplier = reply.fee_multiplier


@dataclass(frozen=True)
class RequestOutcome:
    """A verified request/response round."""

    request: PARPRequest
    response: PARPResponse
    report: VerificationReport
    amount_paid: int          # cumulative a after this request


@dataclass(frozen=True)
class BatchItem:
    """One verified query out of a batch."""

    call: RpcCall
    status: int
    result: bytes
    report: VerificationReport

    @property
    def ok(self) -> bool:
        return self.status == ResponseStatus.OK


@dataclass(frozen=True)
class BatchOutcome:
    """A verified batch round (or its per-key fallback)."""

    items: tuple[BatchItem, ...]
    report: VerificationReport
    amount_paid: int          # cumulative a after the batch
    batched: bool             # False when served via per-key fallback
    request: Optional[BatchRequest] = None
    response: Optional[BatchResponse] = None

    def __len__(self) -> int:
        return len(self.items)


@dataclass
class PendingRequest:
    """A signed, paid, submitted — but not yet verified — request.

    Produced by :meth:`LightClientSession.begin_request`; hand it back to
    :meth:`LightClientSession.collect` to wait for the reply and run the
    §V-D checks.  The payment left the budget at submit time; cancelling
    abandons the correlation (the channel keeps ``spent > acked``, and the
    unacked amount is not volunteered at closure).
    """

    request: PARPRequest
    call: RpcCall
    reply: PendingReply
    collected: bool = field(default=False, compare=False)

    def cancel(self) -> bool:
        """Abandon the in-flight request; True if it had not resolved."""
        return self.reply.cancel()


@dataclass
class PendingBatch:
    """A signed, paid, submitted — but not yet verified — batch."""

    request: BatchRequest
    calls: tuple[RpcCall, ...]
    reply: PendingReply
    collected: bool = field(default=False, compare=False)

    def cancel(self) -> bool:
        """Abandon the in-flight batch; True if it had not resolved."""
        return self.reply.cancel()


class LightClientSession:
    """One light client ↔ full node PARP connection."""

    def __init__(self, key: PrivateKey, endpoint: ServerEndpoint,
                 headers: HeaderSyncer,
                 fee_schedule: FeeSchedule = DEFAULT_FEE_SCHEDULE,
                 gas_price: int = DEFAULT_GAS_PRICE,
                 clock=None, batch_version: Optional[int] = None) -> None:
        self.key = key
        self.endpoint = endpoint
        self.headers = headers
        self.fee_schedule = fee_schedule
        self.gas_price = gas_price
        self.state = LightClientState.IDLE
        self.channel: Optional[ClientChannel] = None
        self.full_node: Optional[Address] = None
        self.history: list[RequestOutcome | BatchOutcome] = []
        self._clock = clock
        #: batch version the server *advertised* out of band (e.g. in its
        #: marketplace listing); settles the probe early where it can —
        #: see :meth:`_seeded_batch_support`
        self._advertised_batch_version = batch_version
        self._batch_support: Optional[bool] = self._seeded_batch_support()

    @property
    def address(self) -> Address:
        return self.key.address

    @property
    def alpha(self) -> Optional[bytes]:
        return self.channel.alpha if self.channel else None

    def _now(self) -> int:
        if self._clock is not None:
            return int(self._clock())
        # Without a wall clock, chain time is the shared notion of "now".
        return self.headers.tip.timestamp if len(self.headers.chain) else 0

    # ------------------------------------------------------------------ #
    # Connection setup (Algorithm 1, light-client side)
    # ------------------------------------------------------------------ #

    def connect(self, budget: int,
                gas_limit: int = DEFAULT_GAS_LIMIT) -> bytes:
        """Handshake and open a funded payment channel; returns α."""
        if self.state is not LightClientState.IDLE:
            raise SessionError(f"cannot connect while {self.state.value}")
        if not 0 < budget <= MAX_AMOUNT:
            raise SessionError("budget out of range")

        self._batch_support = self._seeded_batch_support()
        # line 4: fetch the latest block hash from the network
        self.headers.sync()
        # lines 5-8: HANDSHAKE, await HSCONFIRM
        self.state = LightClientState.HANDSHAKING
        try:
            confirm = self.endpoint.handshake(Handshake(self.address))
        except Exception:
            self.state = LightClientState.IDLE
            raise
        try:
            confirm.verify(self.address)     # line 11
        except HandshakeError:
            self.state = LightClientState.IDLE
            raise
        if confirm.expiry < self._now():
            self.state = LightClientState.IDLE
            raise SessionError("handshake confirmation already expired")
        self.full_node = confirm.full_node

        # lines 13-16: form, sign, and send the OpenChannel transaction
        nonce = self.endpoint.get_transaction_count(self.address)
        open_tx = UnsignedTransaction(
            nonce=nonce, gas_price=self.gas_price, gas_limit=gas_limit,
            to=CHANNELS_MODULE_ADDRESS, value=budget,
            data=encode_call(
                "open_channel",
                [confirm.full_node, confirm.expiry, confirm.signature],
            ),
        ).sign(self.key)
        self.state = LightClientState.UNBONDED
        try:
            receipt = self.endpoint.open_channel(open_tx.encode())
            receipt.verify(confirm.full_node)   # lines 17-18
        except Exception:
            self.state = LightClientState.IDLE
            raise
        self.channel = ClientChannel(
            alpha=receipt.channel_id, full_node=confirm.full_node, budget=budget,
        )
        self.state = LightClientState.BONDED     # line 21
        return receipt.channel_id

    def adopt_channel(self, alpha: bytes, full_node: Address, budget: int,
                      spent: int = 0) -> None:
        """Resume a known open channel (reconnect without reopening)."""
        if self.state is not LightClientState.IDLE:
            raise SessionError(f"cannot adopt a channel while {self.state.value}")
        self.channel = ClientChannel(
            alpha=alpha, full_node=full_node, budget=budget, spent=spent,
            acked=spent,
        )
        self.full_node = full_node
        self.state = LightClientState.BONDED
        self._batch_support = self._seeded_batch_support()

    # ------------------------------------------------------------------ #
    # The paid request path (steps (A) and (D) of Fig. 5)
    # ------------------------------------------------------------------ #

    def request(self, method: str, *params: Any,
                tip: int = 0) -> RequestOutcome:
        """One paid RPC round; returns the verified outcome.

        ``tip`` adds extra payment on top of the fee schedule (e.g. for
        priority service).  Raises on INVALID/FRAUD classifications.
        """
        return self.request_call(RpcCall.create(method, *params), tip=tip)

    def request_call(self, call: RpcCall, tip: int = 0) -> RequestOutcome:
        """Like :meth:`request` but for a pre-built call — a failing-over
        marketplace client re-issues the identical γ to the next server.

        Thin submit-then-wait adapter over the non-blocking path.
        """
        return self.collect(self.begin_request(call, tip=tip))

    # ------------------------------------------------------------------ #
    # The non-blocking request path (issue now, verify on collect)
    # ------------------------------------------------------------------ #

    def _submit(self, method: str, wire: bytes) -> PendingReply:
        """Issue one endpoint call without blocking.

        Transport-capable endpoints return a genuinely in-flight future;
        in-process endpoints execute synchronously and hand back an
        already-resolved one, so callers never branch.
        """
        submit = getattr(self.endpoint, "submit", None)
        if submit is not None:
            return submit(method, wire)
        try:
            value = getattr(self.endpoint, method)(wire)
        except Exception as exc:  # noqa: BLE001 — resolve, don't raise: the
            # failure surfaces (typed) at collect time, same as over a network
            return PendingReply.failed(exc, method=method)
        return PendingReply.completed(value, method=method)

    def begin_request(self, call: RpcCall, tip: int = 0) -> PendingRequest:
        """Step (A) without the wait: sign, pay, submit, return the future.

        Money leaves our budget the moment the signature is on the wire;
        verification (step (D)) runs when the outcome is :meth:`collect`-ed.
        Multiple requests may be in flight on one session at once — their
        cumulative payment amounts are signed in issue order, so pipelining
        assumes in-order delivery (true for fixed/pairwise link latencies;
        a transport that reorders, e.g. ``UniformLatency``, can deliver a
        later, higher amount first, and the server's monotonic payment
        check then rejects the earlier request — it surfaces as INVALID at
        collect time and failover handles it).  Hedged queries are immune:
        each race leg rides its own channel.
        """
        if self.state is not LightClientState.BONDED or self.channel is None:
            raise SessionError(f"no bonded channel (state={self.state.value})")
        price = self.fee_schedule.price(call) + tip
        try:
            amount = self.channel.next_amount(price)
        except ChannelError as exc:
            raise SessionError(str(exc)) from exc

        request = self.build_request(call, amount)
        self.channel.record_request(amount)
        reply = self._submit("serve_request", request.encode_wire())
        return PendingRequest(request=request, call=call, reply=reply)

    def begin_batch(self, calls: Sequence[RpcCall],
                    tip: int = 0) -> PendingBatch:
        """Non-blocking :meth:`query_batch` issue (no per-key fallback:
        callers that want it use the blocking adapter, which probes first).
        """
        if self.state is not LightClientState.BONDED or self.channel is None:
            raise SessionError(f"no bonded channel (state={self.state.value})")
        calls = tuple(calls)
        if not calls:
            raise SessionError("a batch needs at least one call")
        if not self.batch_supported():
            raise SessionError(
                "endpoint does not speak our batch protocol version; "
                "use query_batch for the per-key fallback"
            )
        price = self.fee_schedule.batch_price(calls) + tip
        try:
            amount = self.channel.next_amount(price)
        except ChannelError as exc:
            raise SessionError(str(exc)) from exc

        request = self.build_batch_request(calls, amount)
        self.channel.record_request(amount)
        reply = self._submit("serve_batch", request.encode_wire())
        return PendingBatch(request=request, calls=calls, reply=reply)

    def collect(self, pending: Union[PendingRequest, PendingBatch],
                ) -> Union[RequestOutcome, BatchOutcome]:
        """Wait for the correlated reply and verify it (step (D)).

        A transport failure — timeout, cancellation, or a typed remote
        error — classifies as INVALID with the ``transport`` check, exactly
        like the blocking path always has; a verified response advances the
        channel's acked amount.  Each pending outcome collects once.
        """
        if pending.collected:
            raise SessionError("pending outcome was already collected")
        pending.collected = True
        try:
            raw = pending.reply.result()
        except Exception as exc:
            # drop the correlation (no-op if already resolved) so a reply
            # limping in after the timeout is discarded and counted late
            # instead of resolving a future nobody holds anymore
            pending.reply.cancel()
            raise InvalidResponse(VerificationReport(
                ResponseClass.INVALID, "transport", str(exc),
            )) from exc
        if isinstance(pending, PendingBatch):
            return self.process_batch_response(pending.request, raw)
        return self.process_response(pending.request, raw)

    def build_request(self, call: RpcCall, amount: int) -> PARPRequest:
        """Step (A): pin h_B and produce the doubly signed request."""
        h_b = self.headers.tip.hash
        return PARPRequest.build(
            alpha=self.channel.alpha, h_b=h_b, amount=amount,
            call=call, key=self.key,
        )

    def _raise_if_overloaded(self, raw: bytes, h_req: bytes) -> None:
        """Classify a signed ``Overloaded`` shed before normal decoding.

        Raises :class:`ServerOverloaded` for a *verified* overload reply
        (signed by our bonded server, echoing our request hash) — the soft
        path.  A malformed or mis-signed overload frame is treated exactly
        like any other unverifiable response: :class:`InvalidResponse`, so a
        third party cannot forge backpressure on the server's behalf.

        The channel keeps the shed request's payment as *spent but never
        acked*: cumulative amounts mean a later served request folds it in,
        and a cooperative close concedes only acked value — shedding costs
        the client nothing.
        """
        if not OverloadedReply.is_overload_wire(raw):
            return
        try:
            reply = OverloadedReply.decode_wire(raw)
            reply.verify(expected_signer=self.full_node, expected_h_req=h_req)
        except MessageError as exc:
            raise InvalidResponse(VerificationReport(
                ResponseClass.INVALID, "overload", str(exc),
            )) from exc
        raise ServerOverloaded(reply)

    def process_response(self, request: PARPRequest, raw: bytes) -> RequestOutcome:
        """Step (D): decode, header-sync, classify, and act on a response."""
        self._raise_if_overloaded(raw, request.h_req)
        try:
            response = PARPResponse.decode_wire(raw)
        except MessageError as exc:
            raise InvalidResponse(VerificationReport(
                ResponseClass.INVALID, "decode", str(exc),
            )) from exc

        # Fetch any headers verification will need (free, multi-source).
        request_height = self.headers.height_of(request.h_b)
        if request_height is None:
            raise SessionError("request pinned a header we no longer track")
        try:
            if response.m_b > self.headers.chain.tip_number:
                self.headers.sync_to(response.m_b)
        except SyncError:
            pass  # classification will mark it unverifiable/invalid

        report = classify_response(
            request, response, self.channel.alpha, self.full_node,
            request_height, self.headers.get_header,
        )
        outcome = RequestOutcome(
            request=request, response=response, report=report,
            amount_paid=request.a,
        )
        self.history.append(outcome)

        if report.classification is ResponseClass.FRAUD:
            package = self._try_build_package(request, response)
            self.state = LightClientState.UNBONDING  # terminate the connection
            raise FraudDetected(report, package)
        if report.classification is ResponseClass.INVALID:
            raise InvalidResponse(report)
        self.channel.record_ack(request.a)
        return outcome

    # ------------------------------------------------------------------ #
    # Batched queries (multiproof extension)
    # ------------------------------------------------------------------ #

    def batch_supported(self) -> bool:
        """Probe (for free) whether the server speaks our batch version.

        The answer cannot change while we stay bonded to one endpoint, so
        the network round-trip happens at most once per session — and not
        at all when the server advertised a foreign version out of band
        (see :meth:`_seeded_batch_support`).
        """
        if self._batch_support is None:
            self._batch_support = self._probe_batch_support()
        return self._batch_support

    def _seeded_batch_support(self) -> Optional[bool]:
        """What the advertised version settles without a wire probe.

        A claim of *incompatibility* is taken at its word — no point
        probing a server that already declined.  A claim of compatibility
        is still verified by the free probe on first batch: advertisements
        can lie, and trusting one would sign a batch payment to a server
        that may not be able to serve it.
        """
        if self._advertised_batch_version is None:
            return None   # unknown: probe lazily on first batch
        if self._advertised_batch_version == BATCH_PROTOCOL_VERSION:
            return None   # claimed compatible: verify on first batch
        return False

    def _probe_batch_support(self) -> bool:
        probe = getattr(self.endpoint, "batch_protocol_version", None)
        if probe is None:
            return False
        try:
            return probe() == BATCH_PROTOCOL_VERSION
        except Exception:  # noqa: BLE001 — any probe failure means "don't batch"
            return False

    def query_batch(self, calls: Sequence[RpcCall], tip: int = 0) -> BatchOutcome:
        """N queries, one payment, one multiproof — the batched request path.

        Builds and signs a single :class:`BatchRequest` covering ``calls``,
        advances the channel once by the batch price, and verifies the
        response's shared multiproof item by item.  When the server does not
        speak our batch protocol version (probed for free beforehand, so no
        signed payment is wasted), falls back transparently to sequential
        per-key requests with identical verification guarantees.
        """
        if self.state is not LightClientState.BONDED or self.channel is None:
            raise SessionError(f"no bonded channel (state={self.state.value})")
        calls = tuple(calls)
        if not calls:
            raise SessionError("a batch needs at least one call")
        if not self.batch_supported():
            return self._batch_fallback(calls, tip)
        # Thin submit-then-wait adapter over the non-blocking path.
        return self.collect(self.begin_batch(calls, tip=tip))

    def build_batch_request(self, calls: Sequence[RpcCall],
                            amount: int) -> BatchRequest:
        """Step (A) for a batch: pin h_B and doubly sign once for N calls."""
        return BatchRequest.build(
            alpha=self.channel.alpha, h_b=self.headers.tip.hash,
            amount=amount, calls=calls, key=self.key,
            version=BATCH_PROTOCOL_VERSION,
        )

    def process_batch_response(self, request: BatchRequest,
                               raw: bytes) -> BatchOutcome:
        """Step (D) for a batch: decode, header-sync, classify per item."""
        self._raise_if_overloaded(raw, request.h_req)
        try:
            response = BatchResponse.decode_wire(raw)
        except MessageError as exc:
            raise InvalidResponse(VerificationReport(
                ResponseClass.INVALID, "decode", str(exc),
            )) from exc

        request_height = self.headers.height_of(request.h_b)
        if request_height is None:
            raise SessionError("batch pinned a header we no longer track")
        try:
            if response.m_b > self.headers.chain.tip_number:
                self.headers.sync_to(response.m_b)
        except SyncError:
            pass  # classification will mark it unverifiable/invalid

        report, item_reports = classify_batch_response(
            request, response, self.channel.alpha, self.full_node,
            request_height, self.headers.get_header,
        )
        items = tuple(
            BatchItem(call=call, status=response.statuses[i],
                      result=response.results[i], report=item_reports[i])
            for i, call in enumerate(request.calls)
        ) if item_reports else ()
        outcome = BatchOutcome(
            items=items, report=report, amount_paid=request.a,
            batched=True, request=request, response=response,
        )
        self.history.append(outcome)

        if report.classification is ResponseClass.FRAUD:
            # Batch fraud blobs are not yet understood by the on-chain FDM
            # (Algorithm 2 decodes single responses), so terminate and fail
            # over without a package; the channel dispute path still protects
            # the payment itself.
            self.state = LightClientState.UNBONDING
            raise FraudDetected(report, None)
        if report.classification is ResponseClass.INVALID:
            raise InvalidResponse(report)
        self.channel.record_ack(request.a)
        return outcome

    def _batch_fallback(self, calls: tuple[RpcCall, ...],
                        tip: int) -> BatchOutcome:
        """Per-key service for servers without batch support: same checks,
        N channel updates, N stand-alone proofs."""
        items = []
        amount_paid = self.channel.spent
        for call in calls:
            outcome = self.request_call(call, tip=tip)
            tip = 0  # a tip, if any, is paid once per batch
            amount_paid = outcome.amount_paid
            items.append(BatchItem(
                call=call, status=outcome.response.status,
                result=outcome.response.result, report=outcome.report,
            ))
        return BatchOutcome(
            items=tuple(items),
            report=VerificationReport(ResponseClass.VALID, "all-checks"),
            amount_paid=amount_paid, batched=False,
        )

    def get_balances(self, addresses: Sequence[Address]) -> list[int]:
        """Batched convenience: balances of many accounts in one round."""
        calls = [RpcCall.create("eth_getBalance", a) for a in addresses]
        outcome = self.query_batch(calls)
        balances = []
        for item in outcome.items:
            if not item.ok:
                raise SessionError(
                    f"balance query failed for {item.call.params[0].hex()}"
                )
            balances.append(decode_balance(item.result))
        return balances

    def _try_build_package(self, request: PARPRequest,
                           response: PARPResponse) -> Optional[FraudProofPackage]:
        try:
            return build_fraud_package(
                request, response, self.channel.alpha, self.headers.get_header,
                get_by_hash=self.headers.chain.get_by_hash,
            )
        except FraudProofError:
            return None

    # ------------------------------------------------------------------ #
    # Typed convenience wrappers
    # ------------------------------------------------------------------ #

    def get_balance(self, address: Address) -> int:
        outcome = self.request("eth_getBalance", address)
        return decode_balance(outcome.response.result)

    def get_storage_at(self, address: Address, slot: bytes) -> bytes:
        outcome = self.request("eth_getStorageAt", address, slot)
        item = rlp.decode(outcome.response.result)
        return item[0] if isinstance(item, list) and item else b""

    def get_transaction(self, number: int, index: int) -> bytes:
        outcome = self.request(
            "eth_getTransactionByBlockNumberAndIndex", number, index,
        )
        _, _, tx_bytes = _triple(outcome.response.result)
        return tx_bytes

    def send_raw_transaction(self, raw: bytes) -> tuple[Optional[int], Optional[int], bytes]:
        """Submit a transaction; returns (block, index, tx_hash)."""
        outcome = self.request("eth_sendRawTransaction", raw)
        return decode_inclusion(outcome.response.result)

    def send_transaction(self, tx: Transaction) -> tuple[Optional[int], Optional[int], bytes]:
        return self.send_raw_transaction(tx.encode())

    def get_transaction_receipt(self, tx_hash: bytes) -> bytes:
        outcome = self.request("eth_getTransactionReceipt", tx_hash)
        _, _, receipt_bytes = _triple(outcome.response.result)
        return receipt_bytes

    def block_number(self) -> int:
        outcome = self.request("eth_blockNumber")
        return decode_int_result(outcome.response.result)

    # ------------------------------------------------------------------ #
    # Liveness check (§V-C)
    # ------------------------------------------------------------------ #

    def channel_status_fast(self) -> int:
        """Unverified probe: ask the FN what it thinks the status is."""
        outcome = self.request("parp_channelStatus", self.channel.alpha)
        return decode_int_result(outcome.response.result)

    def channel_status_verified(self) -> int:
        """Verified probe: read the CMM's status slot with a storage proof.

        Even a lying full node cannot fake this — the value authenticates
        against the state root of a header the client obtained from
        independent sources (the §V-C defense against secretly closed
        channels).
        """
        slot = channel_status_slot(self.channel.alpha)
        raw = self.get_storage_at(CHANNELS_MODULE_ADDRESS, slot)
        return int.from_bytes(raw, "big") if raw else 0

    # ------------------------------------------------------------------ #
    # Closure (§IV-E.4, client side)
    # ------------------------------------------------------------------ #

    def build_close_transaction(self, gas_limit: int = 300_000) -> Transaction:
        """CloseChannel tx conceding the highest *acknowledged* amount.

        Payments whose request died in transit (``spent`` > ``acked``) are
        not volunteered; a server that did receive them can still counter
        with its higher σ_a inside the dispute window.
        """
        if self.channel is None:
            raise SessionError("no channel to close")
        from .messages import payment_digest

        amount = self.channel.acked
        sig_a = (self.key.sign(payment_digest(self.channel.alpha, amount)).to_bytes()
                 if amount else b"")
        nonce = self.endpoint.get_transaction_count(self.address)
        return UnsignedTransaction(
            nonce=nonce, gas_price=self.gas_price, gas_limit=gas_limit,
            to=CHANNELS_MODULE_ADDRESS, value=0,
            data=encode_call(
                "close_channel", [self.channel.alpha, amount, sig_a],
            ),
        ).sign(self.key)

    def close(self, relay: Optional[ServerEndpoint] = None) -> bytes:
        """Start closure (through any relay — not necessarily our FN)."""
        if self.state is not LightClientState.BONDED:
            raise SessionError(f"cannot close while {self.state.value}")
        tx = self.build_close_transaction()
        endpoint = relay if relay is not None else self.endpoint
        tx_hash = endpoint.relay_transaction(tx.encode())
        self.state = LightClientState.UNBONDING
        return tx_hash

    def confirm_close(self, relay: Optional[ServerEndpoint] = None) -> bytes:
        """Settle after the dispute window; returns to IDLE."""
        if self.state is not LightClientState.UNBONDING or self.channel is None:
            raise SessionError(f"cannot confirm closure while {self.state.value}")
        endpoint = relay if relay is not None else self.endpoint
        nonce = endpoint.get_transaction_count(self.address)
        tx = UnsignedTransaction(
            nonce=nonce, gas_price=self.gas_price, gas_limit=300_000,
            to=CHANNELS_MODULE_ADDRESS, value=0,
            data=encode_call("confirm_closure", [self.channel.alpha]),
        ).sign(self.key)
        tx_hash = endpoint.relay_transaction(tx.encode())
        self.state = LightClientState.IDLE
        self.channel = None
        self.full_node = None
        return tx_hash


def _triple(raw: bytes) -> tuple[bytes, bytes, bytes]:
    item = rlp.decode(raw)
    if not isinstance(item, list) or len(item) != 3:
        raise SessionError("malformed result payload")
    return item[0], item[1], item[2]
