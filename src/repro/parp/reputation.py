"""Reputation tracking — the §VIII Sybil-mitigation sketch.

"Introducing a reputation system to validate the legitimacy of served light
clients could be one solution to this issue."  We keep an exponentially
decayed event ledger per address; scores in [0, 1] weigh Proof-of-Serving
receipts and guide the client's full-node selection (prefer long-lived,
never-slashed nodes; distrust freshly minted identities).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..crypto.keys import Address

__all__ = ["ReputationEvent", "ReputationLedger"]

# event weights (positive builds trust, negative destroys it)
EVENT_WEIGHTS = {
    "served_ok": 1.0,          # verified valid response
    "channel_settled": 5.0,    # clean cooperative closure
    "invalid_response": -10.0, # unverifiable garbage
    "fraud_slashed": -1000.0,  # on-chain adjudicated fraud
    "equivocation": -100.0,    # served conflicting headers
    "timeout": -2.0,           # broke the synchrony bound
}


@dataclass(frozen=True)
class ReputationEvent:
    subject: Address
    kind: str
    time: float
    weight: float


@dataclass
class ReputationLedger:
    """Decayed additive reputation with a bounded [0, 1] score.

    ``half_life`` (in the ledger's time unit) controls how fast history
    fades; ``newcomer_score`` is what an unknown address gets — keeping it
    low is the anti-Sybil lever (fresh identities start untrusted).
    """

    half_life: float = 86_400.0
    newcomer_score: float = 0.1
    saturation: float = 100.0    # raw score that maps to ~1.0
    _events: dict[Address, list[ReputationEvent]] = field(default_factory=dict)

    def record(self, subject: Address, kind: str, time: float,
               weight: Optional[float] = None) -> None:
        if weight is None:
            if kind not in EVENT_WEIGHTS:
                raise ValueError(f"unknown reputation event kind {kind!r}")
            weight = EVENT_WEIGHTS[kind]
        self._events.setdefault(subject, []).append(
            ReputationEvent(subject, kind, time, weight)
        )

    def raw_score(self, subject: Address, now: float) -> float:
        events = self._events.get(subject, [])
        total = 0.0
        for event in events:
            age = max(0.0, now - event.time)
            decay = 0.5 ** (age / self.half_life)
            total += event.weight * decay
        return total

    def score(self, subject: Address, now: float) -> float:
        """Normalized score in [0, 1]; unknown addresses get newcomer_score."""
        if subject not in self._events:
            return self.newcomer_score
        raw = self.raw_score(subject, now)
        if raw <= 0:
            return 0.0
        return min(1.0, raw / self.saturation)

    def rank(self, candidates: list[Address], now: float) -> list[Address]:
        """Order candidate full nodes by descending trust."""
        return sorted(candidates, key=lambda a: self.score(a, now), reverse=True)

    def is_banned(self, subject: Address, now: float) -> bool:
        """Addresses with non-positive decayed score are avoided entirely."""
        return subject in self._events and self.raw_score(subject, now) <= 0.0
