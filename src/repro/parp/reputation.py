"""Reputation tracking — the §VIII Sybil-mitigation sketch.

"Introducing a reputation system to validate the legitimacy of served light
clients could be one solution to this issue."  We keep an exponentially
decayed event ledger per address; scores in [0, 1] weigh Proof-of-Serving
receipts and guide the client's full-node selection (prefer long-lived,
never-slashed nodes; distrust freshly minted identities).

Event kinds are exported as constants so the client, server, marketplace,
and tests share one vocabulary — ``record`` rejects unknown kinds even when
an explicit weight is supplied, so a typo'd kind fails loudly instead of
silently scoring zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..crypto.keys import Address

__all__ = [
    "EVENT_SERVED_OK",
    "EVENT_CHANNEL_SETTLED",
    "EVENT_INVALID_RESPONSE",
    "EVENT_FRAUD_DETECTED",
    "EVENT_FRAUD_SLASHED",
    "EVENT_EQUIVOCATION",
    "EVENT_TIMEOUT",
    "EVENT_OVERLOADED",
    "EVENT_VERSION_MISMATCH",
    "EVENT_WEIGHTS",
    "EVENT_KINDS",
    "SOFT_EVENT_KINDS",
    "ReputationEvent",
    "ReputationLedger",
]

# -- the shared event-kind vocabulary -------------------------------------- #
EVENT_SERVED_OK = "served_ok"                # verified valid response
EVENT_CHANNEL_SETTLED = "channel_settled"    # clean cooperative closure
EVENT_INVALID_RESPONSE = "invalid_response"  # unverifiable garbage
EVENT_FRAUD_DETECTED = "fraud_detected"      # locally verified fraud evidence
EVENT_FRAUD_SLASHED = "fraud_slashed"        # on-chain adjudicated fraud
EVENT_EQUIVOCATION = "equivocation"          # served conflicting headers
EVENT_TIMEOUT = "timeout"                    # broke the synchrony bound
EVENT_OVERLOADED = "overloaded"              # signed, honest shed (soft)
EVENT_VERSION_MISMATCH = "version_mismatch"  # advertised capability it lacks

# event weights (positive builds trust, negative destroys it)
EVENT_WEIGHTS = {
    EVENT_SERVED_OK: 1.0,
    EVENT_CHANNEL_SETTLED: 5.0,
    EVENT_INVALID_RESPONSE: -10.0,
    EVENT_FRAUD_DETECTED: -200.0,
    EVENT_FRAUD_SLASHED: -1000.0,
    EVENT_EQUIVOCATION: -100.0,
    EVENT_TIMEOUT: -2.0,
    EVENT_OVERLOADED: -0.1,
    EVENT_VERSION_MISMATCH: -0.5,
}

#: every kind the ledger accepts; ``record`` raises on anything else.
EVENT_KINDS = frozenset(EVENT_WEIGHTS)

#: *Soft* negative kinds: honest, attributable backpressure rather than
#: misbehavior.  An ``Overloaded`` reply is a **signed refusal** — the server
#: met the protocol, it just had no capacity — which is categorically
#: different from a timeout (broke the synchrony bound) or invalid garbage.
#: Soft evidence may sink a server's ranking, but on its own it can never
#: ban: a server that sheds when saturated must not be reputationally
#: punished into a death spiral (shed → score 0 → banned → never re-ranked
#: back in once it recovers).
SOFT_EVENT_KINDS = frozenset({EVENT_OVERLOADED})


@dataclass(frozen=True)
class ReputationEvent:
    subject: Address
    kind: str
    time: float
    weight: float
    #: True when this event arrived over the reputation gossip topic rather
    #: than from first-hand experience.  Remote events weigh into the score
    #: but are **never** hard evidence: gossip alone cannot ban (see
    #: :meth:`ReputationLedger.has_hard_negative`).
    remote: bool = False
    #: who vouched for a remote event (None for first-hand events).
    reporter: Optional[Address] = None


@dataclass
class ReputationLedger:
    """Decayed additive reputation with a bounded [0, 1] score.

    ``half_life`` (in the ledger's time unit) controls how fast history
    fades; ``newcomer_score`` is what an unknown address gets — keeping it
    low is the anti-Sybil lever (fresh identities start untrusted).
    """

    half_life: float = 86_400.0
    newcomer_score: float = 0.1
    saturation: float = 100.0    # raw score that maps to ~1.0
    #: score floor for addresses whose only negative evidence is *soft*
    #: (see :data:`SOFT_EVENT_KINDS`): kept at the marketplace's selection
    #: threshold so a chronically shedding server sinks to last resort but
    #: stays selectable once every alternative is worse.
    soft_floor: float = 0.05
    #: cap on the total |negative weight| one gossip reporter may land on
    #: one subject — the poisoning bound: however many events a hostile
    #: reporter signs, its influence on a victim's score saturates here.
    remote_budget: float = 30.0
    _events: dict[Address, list[ReputationEvent]] = field(default_factory=dict)
    _remote_spent: dict[tuple[Address, Address], float] = field(
        default_factory=dict)

    def record(self, subject: Address, kind: str, time: float,
               weight: Optional[float] = None) -> None:
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown reputation event kind {kind!r}")
        if weight is None:
            weight = EVENT_WEIGHTS[kind]
        self._events.setdefault(subject, []).append(
            ReputationEvent(subject, kind, time, weight)
        )

    def merge_remote(self, subject: Address, kind: str, time: float,
                     reporter: Address,
                     discount: float = 1.0) -> Optional[ReputationEvent]:
        """Fold one gossiped (foreign) event into the ledger.

        The event's native weight is scaled by ``discount`` (the caller's
        stake-derived confidence in the reporter, clamped to [0, 1]).
        Negative influence is additionally capped by ``remote_budget`` per
        (reporter, subject) pair, and the stored event is flagged
        ``remote`` — so *no combination of gossiped events alone can
        hard-ban*: :meth:`has_hard_negative` ignores remote evidence and a
        purely-gossip-poisoned honest server bottoms out at ``soft_floor``
        (last resort, still selectable), exactly like an overload storm.

        Returns the recorded event, or None when the event carried no
        admissible weight (zero discount or an exhausted budget).
        """
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown reputation event kind {kind!r}")
        weight = EVENT_WEIGHTS[kind] * max(0.0, min(1.0, discount))
        if weight < 0:
            key = (reporter, subject)
            room = self.remote_budget - self._remote_spent.get(key, 0.0)
            if room <= 0:
                return None
            weight = max(weight, -room)
            self._remote_spent[key] = (self._remote_spent.get(key, 0.0)
                                       - weight)
        elif weight == 0.0:
            return None
        event = ReputationEvent(subject, kind, time, weight,
                                remote=True, reporter=reporter)
        self._events.setdefault(subject, []).append(event)
        return event

    def events_of(self, subject: Address) -> tuple[ReputationEvent, ...]:
        """The raw event history for one address (oldest first)."""
        return tuple(self._events.get(subject, ()))

    def raw_score(self, subject: Address, now: float) -> float:
        events = self._events.get(subject, [])
        total = 0.0
        for event in events:
            age = max(0.0, now - event.time)
            decay = 0.5 ** (age / self.half_life)
            total += event.weight * decay
        return total

    def has_hard_negative(self, subject: Address) -> bool:
        """Whether any recorded event is *hard* negative evidence —
        a negative weight whose kind is not in :data:`SOFT_EVENT_KINDS`.

        Remote (gossiped) events never qualify, whatever their kind: a ban
        requires first-hand evidence, so reputation poisoning over gossip
        can demote a server to last resort but can never exile it.
        """
        return any(event.weight < 0 and event.kind not in SOFT_EVENT_KINDS
                   and not event.remote
                   for event in self._events.get(subject, ()))

    def score(self, subject: Address, now: float) -> float:
        """Normalized score in [0, 1]; unknown addresses get newcomer_score.

        A non-positive raw score collapses to 0.0 only on hard negative
        evidence; soft-only histories bottom out at ``soft_floor`` (an
        overload storm demotes a server to last resort, never to banned).
        """
        if subject not in self._events:
            return self.newcomer_score
        raw = self.raw_score(subject, now)
        if raw <= 0:
            if self.has_hard_negative(subject):
                return 0.0
            return min(self.soft_floor, 1.0)
        return min(1.0, raw / self.saturation)

    def rank(self, candidates: list[Address], now: float) -> list[Address]:
        """Order candidate full nodes by descending trust."""
        return sorted(candidates, key=lambda a: self.score(a, now), reverse=True)

    def is_banned(self, subject: Address, now: float) -> bool:
        """Non-positive decayed score **plus hard negative evidence**.

        Soft evidence alone (honest shedding) never bans — without the hard
        requirement, a fresh server's very first ``Overloaded`` reply would
        take its raw score non-positive and exile it permanently.
        """
        return (subject in self._events
                and self.raw_score(subject, now) <= 0.0
                and self.has_hard_negative(subject))
