"""The ``new_heads`` gossip domain: signed push-based head propagation.

Servers publish a :class:`HeadAnnouncement` — the sealed header, signed by
the operator key that staked in the deposit registry — the moment a block
seals.  Subscribed clients verify the signature, gate the announcer on its
registry stake (a Sybil with no collateral cannot vote), collect a quorum
of *distinct* staked announcers per (height, hash) — the same quorum rule
:class:`~repro.lightclient.sync.HeaderSyncer` applies to pulled headers —
and only then offer the header to the syncer's push path, which re-checks
continuity (§V-D rules) before appending.

An announcer caught signing **two different heads at one height** is an
equivocator: the pair of signed announcements is a self-contained
:class:`HeadEquivocationProof` that the on-chain Fraud Detection Module can
adjudicate (``submit_head_equivocation``) and slash, exactly like response
fraud — both signatures recover to the same registry identity over
conflicting payloads, so no channel context is needed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..chain.header import BlockHeader
from ..crypto import Signature, SignatureError, keccak256, recover_address
from ..crypto.keys import Address, PrivateKey
from ..parp.constants import MIN_FULL_NODE_DEPOSIT, SIGNATURE_BYTES
from ..parp.messages import MessageError
from ..parp.reputation import EVENT_EQUIVOCATION, ReputationLedger
from ..rlp import codec as rlp
from .pubsub import GossipMessage, GossipNode

__all__ = [
    "TOPIC_NEW_HEADS",
    "HEAD_ANNOUNCEMENT_DOMAIN",
    "HeadAnnouncement",
    "HeadEquivocationProof",
    "HeadGossipStats",
    "HeadGossip",
]

#: the Altair-style optimistic-update topic, PARP edition.
TOPIC_NEW_HEADS = "parp/new_heads/1"

#: domain separator for announcement digests — a header signature can never
#: collide with a request/response/overload signature over the same bytes.
HEAD_ANNOUNCEMENT_DOMAIN = b"PARP_HEAD_ANNOUNCE_V1"


def announcement_digest(header_bytes: bytes) -> bytes:
    """keccak over the domain-separated header encoding (what gets signed
    off-chain and re-derived on-chain by the FDM)."""
    return keccak256(HEAD_ANNOUNCEMENT_DOMAIN + header_bytes)


@dataclass(frozen=True)
class HeadAnnouncement:
    """A sealed header vouched for by one registry identity."""

    header: BlockHeader
    signature: bytes          # 65-byte recoverable ECDSA over the digest

    @classmethod
    def build(cls, header: BlockHeader, key: PrivateKey) -> "HeadAnnouncement":
        sig = key.sign(announcement_digest(header.encode()))
        return cls(header=header, signature=sig.to_bytes())

    # -- wire ----------------------------------------------------------- #

    def encode(self) -> bytes:
        return rlp.encode([self.header.encode(), self.signature])

    @classmethod
    def decode(cls, raw: bytes) -> "HeadAnnouncement":
        try:
            item = rlp.decode(raw)
        except rlp.RLPError as exc:
            raise MessageError(f"undecodable head announcement: {exc}") from exc
        if (not isinstance(item, list) or len(item) != 2
                or not isinstance(item[0], bytes)
                or not isinstance(item[1], bytes)):
            raise MessageError("head announcement must be [header, sig]")
        if len(item[1]) != SIGNATURE_BYTES:
            raise MessageError("head announcement signature must be 65 bytes")
        try:
            header = BlockHeader.decode(item[0])
        except (rlp.RLPError, ValueError) as exc:
            raise MessageError(f"bad header in announcement: {exc}") from exc
        return cls(header=header, signature=item[1])

    # -- verification --------------------------------------------------- #

    def signer(self) -> Address:
        try:
            return recover_address(announcement_digest(self.header.encode()),
                                   Signature.from_bytes(self.signature))
        except SignatureError as exc:
            raise MessageError(f"bad announcement signature: {exc}") from exc


@dataclass(frozen=True)
class HeadEquivocationProof:
    """Two signed announcements by one identity at one height with
    different hashes — self-contained, on-chain-checkable misbehavior."""

    first: HeadAnnouncement
    second: HeadAnnouncement
    announcer: Address

    def __post_init__(self) -> None:
        if self.first.header.number != self.second.header.number:
            raise MessageError("equivocation proof spans two heights")
        if self.first.header.hash == self.second.header.hash:
            raise MessageError("equivocation proof repeats one header")

    @property
    def height(self) -> int:
        return self.first.header.number

    def evidence_digest(self) -> bytes:
        """Stable 32-byte identifier of this evidence pair (order-free)."""
        a = announcement_digest(self.first.header.encode())
        b = announcement_digest(self.second.header.encode())
        return keccak256(min(a, b) + max(a, b))


@dataclass
class HeadGossipStats:
    announced_seen: int = 0       # valid announcements decoded
    undecodable: int = 0
    bad_signature: int = 0
    understaked: int = 0          # announcer below the registry gate
    equivocations: int = 0        # conflicting pairs detected
    quorum_applied: int = 0       # headers offered after reaching quorum
    heads_appended: int = 0       # offers the syncer actually appended
    heads_pulled: int = 0         # offers that triggered a gap-filling pull
    duplicates: int = 0           # offers the syncer already knew


class HeadGossip:
    """Client-side glue: the ``new_heads`` subscription feeding a syncer.

    ``stake_of`` maps an announcer address to its registry deposit; without
    it every signed announcer is taken at face value (closed-world tests).
    ``quorum`` defaults to the syncer's own pull quorum, so push and pull
    apply one safety rule.  ``witness``/``reporter`` wire detected
    equivocations into the on-chain slash path; ``on_equivocation`` lets
    the owner publish the event onward (shared reputation).
    """

    def __init__(self, gossip: GossipNode, syncer,
                 stake_of: Optional[Callable[[Address], int]] = None,
                 min_stake: int = MIN_FULL_NODE_DEPOSIT,
                 quorum: Optional[int] = None,
                 reputation: Optional[ReputationLedger] = None,
                 witness=None,
                 reporter: Optional[Address] = None,
                 clock: Optional[Callable[[], float]] = None,
                 on_equivocation: Optional[
                     Callable[[HeadEquivocationProof], None]] = None) -> None:
        self.gossip = gossip
        self.syncer = syncer
        self.stake_of = stake_of
        self.min_stake = min_stake
        self.quorum = quorum if quorum is not None else getattr(
            syncer, "quorum", 1)
        self.reputation = reputation
        self.witness = witness
        self.reporter = reporter
        self.on_equivocation = on_equivocation
        self._clock = clock if clock is not None else gossip.network.clock.now
        self.stats = HeadGossipStats()
        #: the one announcement we hold per (announcer, height) — a second,
        #: different one is the equivocation trigger
        self._by_announcer: dict[tuple[Address, int], HeadAnnouncement] = {}
        #: distinct staked announcers vouching per (height, hash)
        self._votes: dict[tuple[int, bytes], set[Address]] = {}
        self._candidates: dict[tuple[int, bytes], BlockHeader] = {}
        #: (height, hash) pairs already offered — replayed quorums are free
        self._applied: set[tuple[int, bytes]] = set()
        self.equivocators: set[Address] = set()
        gossip.subscribe(TOPIC_NEW_HEADS, self._on_announcement)

    def resubscribe(self) -> None:
        """Rejoin the topic after a partition heal (idempotent dedup state
        makes double delivery harmless)."""
        self.gossip.unsubscribe(TOPIC_NEW_HEADS, self._on_announcement)
        self.gossip.subscribe(TOPIC_NEW_HEADS, self._on_announcement)

    # ------------------------------------------------------------------ #
    # The subscription handler
    # ------------------------------------------------------------------ #

    def _on_announcement(self, message: GossipMessage) -> None:
        try:
            announcement = HeadAnnouncement.decode(message.payload)
        except MessageError:
            self.stats.undecodable += 1
            return
        try:
            announcer = announcement.signer()
        except MessageError:
            self.stats.bad_signature += 1
            return
        if announcer in self.equivocators:
            return
        if self.stake_of is not None and (
                self.stake_of(announcer) < self.min_stake):
            self.stats.understaked += 1
            return
        self.stats.announced_seen += 1
        height = announcement.header.number
        held = self._by_announcer.get((announcer, height))
        if held is not None and held.header.hash != announcement.header.hash:
            self._handle_equivocation(held, announcement, announcer)
            return
        self._by_announcer[(announcer, height)] = announcement
        key = (height, announcement.header.hash)
        self._candidates[key] = announcement.header
        self._votes.setdefault(key, set()).add(announcer)
        self._maybe_apply(key)

    def _maybe_apply(self, key: tuple[int, bytes]) -> None:
        if key in self._applied:
            return
        if len(self._votes.get(key, ())) < self.quorum:
            return
        self._applied.add(key)
        self.stats.quorum_applied += 1
        result = self.syncer.offer_header(self._candidates[key])
        if result == "appended":
            self.stats.heads_appended += 1
        elif result == "pulled":
            self.stats.heads_pulled += 1
        elif result == "known":
            self.stats.duplicates += 1
        self._prune(key[0])

    def _prune(self, applied_height: int) -> None:
        """Bound the vote books: anything at or below an applied height is
        settled (equivocation tracking keeps only the same sliding edge)."""
        for book in (self._votes, self._candidates):
            for key in [k for k in book if k[0] < applied_height]:
                del book[key]
        for key in [k for k in self._by_announcer if k[1] < applied_height]:
            del self._by_announcer[key]
        self._applied = {k for k in self._applied if k[0] >= applied_height}

    # ------------------------------------------------------------------ #
    # Equivocation
    # ------------------------------------------------------------------ #

    def _handle_equivocation(self, first: HeadAnnouncement,
                             second: HeadAnnouncement,
                             announcer: Address) -> None:
        self.stats.equivocations += 1
        self.equivocators.add(announcer)
        # an equivocator's vouching is worthless: purge its votes so a
        # not-yet-applied candidate cannot ride on them
        for voters in self._votes.values():
            voters.discard(announcer)
        proof = HeadEquivocationProof(first=first, second=second,
                                      announcer=announcer)
        if self.reputation is not None:
            # first-hand cryptographic evidence — recorded as a local (hard)
            # event, unlike anything arriving over the reputation topic
            self.reputation.record(announcer, EVENT_EQUIVOCATION,
                                   self._clock())
        if self.witness is not None:
            submit = getattr(self.witness, "submit_equivocation", None)
            if submit is not None:
                try:
                    submit(proof, reporter=self.reporter)
                except Exception:  # noqa: BLE001 — on-chain path is best-effort
                    pass
        if self.on_equivocation is not None:
            self.on_equivocation(proof)
