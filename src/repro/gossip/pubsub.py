"""Topic-based gossip pub/sub over the simulated network.

The ROADMAP's gossip item is modeled on the consensus-specs Altair
light-client networking section: nodes join named topics
(``light_client_optimistic_update``-style), a publisher floods its mesh
peers, and every hop relays with dedup until the hop budget (TTL) runs out.
:class:`GossipNode` is the transport-level half: it knows nothing about
headers or reputation — domains (:mod:`repro.gossip.heads`,
:mod:`repro.gossip.repshare`) subscribe handlers and publish opaque payload
bytes.

Design points, each load-bearing for a test:

* **Bounded seen-cache** — dedup is an OrderedDict capped at
  ``seen_cache_size`` per node (FIFO eviction), so memory stays O(cache)
  no matter how long the node lives.
* **Fanout-limited relay** — each accepted message is forwarded to at most
  ``fanout`` peers, chosen deterministically from the message id (a stable
  rotation over the sorted peer list), excluding the hop it arrived from
  and its origin.  Flood-with-dedup keeps propagation reliable on sparse
  meshes while the fanout bounds per-node amplification.
* **Hop TTL** — every relay decrements ``ttl``; a message arriving with
  ttl 0 is delivered but not forwarded, so the hop count (and therefore
  total traffic) is bounded by the publisher's initial TTL.
* **Per-peer rate scoring** — a sliding window counts messages per sending
  peer; peers over ``rate_limit`` per ``rate_window`` get dropped before
  any decode work, which is the flood-control the reputation topic needs.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from itertools import count
from typing import Callable, Optional, Sequence

from ..crypto import keccak256
from ..net.network import SimNetwork

__all__ = [
    "GossipError",
    "GossipMessage",
    "GossipStats",
    "GossipNode",
    "connect_mesh",
]

#: default hop budget: enough for any mesh a devnet builds (diameter ≤ 4).
DEFAULT_TTL = 4
#: default relay fanout per accepted message.
DEFAULT_FANOUT = 6
#: default dedup cache capacity (message ids per node).
DEFAULT_SEEN_CACHE = 4096
#: default per-peer flood control: messages per window before drops start.
DEFAULT_RATE_LIMIT = 64
DEFAULT_RATE_WINDOW = 1.0


class GossipError(Exception):
    """Misuse of the gossip layer (bad topic, unknown peer, …)."""


@dataclass(frozen=True)
class GossipMessage:
    """One gossip datagram: a topic, opaque payload bytes, and routing
    metadata.  The id commits to everything identity-relevant — topic,
    origin, per-origin sequence number, payload — so replays and
    relay-copies dedup to one delivery while distinct publications never
    collide."""

    topic: str
    payload: bytes
    origin: str          # publisher's gossip-node name
    seq: int             # per-origin publication counter
    ttl: int             # remaining relay hops

    @property
    def msg_id(self) -> bytes:
        return keccak256(
            self.topic.encode("utf-8") + b"\x00" + self.origin.encode("utf-8")
            + b"\x00" + self.seq.to_bytes(8, "big") + self.payload
        )

    @property
    def wire_size(self) -> int:
        """Byte estimate for the network's traffic accounting."""
        return len(self.payload) + len(self.topic) + len(self.origin) + 16

    def hop(self) -> "GossipMessage":
        """The relay copy: one less hop in the budget."""
        return GossipMessage(topic=self.topic, payload=self.payload,
                             origin=self.origin, seq=self.seq,
                             ttl=self.ttl - 1)


@dataclass
class GossipStats:
    """Per-node traffic counters."""

    published: int = 0          # local publishes
    received: int = 0           # messages arriving from peers
    delivered: int = 0          # handler invocations (post-dedup)
    relayed: int = 0            # forward sends on behalf of others
    duplicates_dropped: int = 0
    ttl_exhausted: int = 0      # accepted but not relayed (ttl ran out)
    rate_limited: int = 0       # dropped before decode: peer over budget
    undecodable: int = 0        # non-GossipMessage payloads


@dataclass
class _PeerScore:
    """Sliding-window accounting for one sending peer."""

    window_start: float = 0.0
    in_window: int = 0
    accepted: int = 0
    dropped: int = 0


class GossipNode:
    """One participant in the gossip overlay.

    Registers itself on the :class:`~repro.net.network.SimNetwork` under
    ``name`` (so gossip traffic shares the same latency/partition/loss
    model as every other message).  Peering is explicit and directed —
    :func:`connect_mesh` builds the usual full mesh; a light client joining
    a server mesh peers both directions itself.
    """

    def __init__(self, network: SimNetwork, name: str,
                 fanout: int = DEFAULT_FANOUT, ttl: int = DEFAULT_TTL,
                 seen_cache_size: int = DEFAULT_SEEN_CACHE,
                 rate_limit: int = DEFAULT_RATE_LIMIT,
                 rate_window: float = DEFAULT_RATE_WINDOW) -> None:
        if fanout < 1:
            raise GossipError("fanout must be at least 1")
        if ttl < 0:
            raise GossipError("ttl must be non-negative")
        if seen_cache_size < 1:
            raise GossipError("seen cache needs at least one slot")
        self.network = network
        self.name = name
        self.fanout = fanout
        self.ttl = ttl
        self.seen_cache_size = seen_cache_size
        self.rate_limit = rate_limit
        self.rate_window = rate_window
        self.peers: list[str] = []
        self.stats = GossipStats()
        self._topics: dict[str, list[Callable[[GossipMessage], None]]] = {}
        self._seen: OrderedDict[bytes, None] = OrderedDict()
        self._seq = count()
        self._peer_scores: dict[str, _PeerScore] = {}
        network.register(name, self)

    # ------------------------------------------------------------------ #
    # Topology
    # ------------------------------------------------------------------ #

    def add_peer(self, name: str) -> None:
        """Start forwarding to (and accepting floods from) ``name``."""
        if name == self.name:
            raise GossipError("a gossip node cannot peer with itself")
        if name not in self.peers:
            self.peers.append(name)
            self.peers.sort()   # deterministic fanout selection

    def remove_peer(self, name: str) -> None:
        try:
            self.peers.remove(name)
        except ValueError:
            pass

    # ------------------------------------------------------------------ #
    # Pub/sub
    # ------------------------------------------------------------------ #

    def subscribe(self, topic: str,
                  handler: Callable[[GossipMessage], None]) -> None:
        """Deliver future messages on ``topic`` to ``handler``.

        Re-subscribing after a partition heals is how a node recovers its
        membership — dedup state survives, so messages it already saw
        through another path stay deduplicated.
        """
        if not topic:
            raise GossipError("topic must be non-empty")
        self._topics.setdefault(topic, []).append(handler)

    def unsubscribe(self, topic: str,
                    handler: Optional[Callable[[GossipMessage], None]] = None,
                    ) -> None:
        """Drop one handler, or the whole topic when ``handler`` is None."""
        handlers = self._topics.get(topic)
        if handlers is None:
            return
        if handler is None:
            del self._topics[topic]
            return
        try:
            handlers.remove(handler)
        except ValueError:
            return
        if not handlers:
            del self._topics[topic]

    def subscribed(self, topic: str) -> bool:
        return topic in self._topics

    def publish(self, topic: str, payload: bytes) -> GossipMessage:
        """Originate a message: deliver locally, flood to fanout peers."""
        if not topic:
            raise GossipError("topic must be non-empty")
        message = GossipMessage(topic=topic, payload=bytes(payload),
                                origin=self.name, seq=next(self._seq),
                                ttl=self.ttl)
        self.stats.published += 1
        self._mark_seen(message.msg_id)
        self._deliver(message)
        self._forward(message, exclude=())
        return message

    # ------------------------------------------------------------------ #
    # The network-facing receive path
    # ------------------------------------------------------------------ #

    def on_message(self, src: str, payload) -> None:
        if not isinstance(payload, GossipMessage):
            self.stats.undecodable += 1
            return
        self.stats.received += 1
        if not self._admit(src):
            self.stats.rate_limited += 1
            return
        msg_id = payload.msg_id
        if msg_id in self._seen:
            self.stats.duplicates_dropped += 1
            return
        self._mark_seen(msg_id)
        self._deliver(payload)
        if payload.ttl <= 0:
            self.stats.ttl_exhausted += 1
            return
        self._forward(payload.hop(), exclude=(src, payload.origin))

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _mark_seen(self, msg_id: bytes) -> None:
        self._seen[msg_id] = None
        while len(self._seen) > self.seen_cache_size:
            self._seen.popitem(last=False)

    def _deliver(self, message: GossipMessage) -> None:
        handlers = self._topics.get(message.topic)
        if not handlers:
            return
        for handler in list(handlers):
            self.stats.delivered += 1
            handler(message)

    def _forward(self, message: GossipMessage,
                 exclude: Sequence[str]) -> None:
        candidates = [p for p in self.peers if p not in exclude]
        if not candidates:
            return
        # stable per-message rotation spreads relay load across the mesh
        # without randomness (determinism keeps the sim reproducible)
        start = int.from_bytes(message.msg_id[:4], "big") % len(candidates)
        chosen = [candidates[(start + i) % len(candidates)]
                  for i in range(min(self.fanout, len(candidates)))]
        for peer in chosen:
            self.stats.relayed += 1
            self.network.send(self.name, peer, message,
                              size_bytes=message.wire_size)

    def _admit(self, src: str) -> bool:
        """Sliding-window flood control for one sending peer."""
        score = self._peer_scores.get(src)
        if score is None:
            score = self._peer_scores[src] = _PeerScore()
        now = self.network.clock.now()
        if now - score.window_start >= self.rate_window:
            score.window_start = now
            score.in_window = 0
        score.in_window += 1
        if self.rate_limit and score.in_window > self.rate_limit:
            score.dropped += 1
            return False
        score.accepted += 1
        return True

    def peer_score(self, name: str) -> tuple[int, int]:
        """(accepted, dropped) counts for one sending peer — the raw
        material for demoting flooders."""
        score = self._peer_scores.get(name)
        if score is None:
            return (0, 0)
        return (score.accepted, score.dropped)

    def __repr__(self) -> str:
        return (f"GossipNode({self.name!r}, peers={len(self.peers)}, "
                f"topics={sorted(self._topics)})")


def connect_mesh(nodes: Sequence[GossipNode]) -> None:
    """Fully mesh a set of gossip nodes (every pair, both directions)."""
    for a in nodes:
        for b in nodes:
            if a is not b:
                a.add_peer(b.name)
