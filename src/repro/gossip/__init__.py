"""Gossip subsystem: topic pub/sub over SimNetwork plus the two PARP
domains riding on it — push-based head propagation (``new_heads``) and
shared, stake-weighted reputation (``reputation``)."""

from .heads import (
    HEAD_ANNOUNCEMENT_DOMAIN,
    TOPIC_NEW_HEADS,
    HeadAnnouncement,
    HeadEquivocationProof,
    HeadGossip,
    HeadGossipStats,
    announcement_digest,
)
from .pubsub import (
    DEFAULT_FANOUT,
    DEFAULT_TTL,
    GossipError,
    GossipMessage,
    GossipNode,
    GossipStats,
    connect_mesh,
)
from .repshare import (
    GOSSIPABLE_KINDS,
    TOPIC_REPUTATION,
    ReputationGossip,
    ReputationShare,
    ReputationShareStats,
    reputation_digest,
)

__all__ = [
    "GossipError",
    "GossipMessage",
    "GossipNode",
    "GossipStats",
    "connect_mesh",
    "DEFAULT_FANOUT",
    "DEFAULT_TTL",
    "TOPIC_NEW_HEADS",
    "HEAD_ANNOUNCEMENT_DOMAIN",
    "announcement_digest",
    "HeadAnnouncement",
    "HeadEquivocationProof",
    "HeadGossip",
    "HeadGossipStats",
    "TOPIC_REPUTATION",
    "GOSSIPABLE_KINDS",
    "reputation_digest",
    "ReputationGossip",
    "ReputationShare",
    "ReputationShareStats",
]
