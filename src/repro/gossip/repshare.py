"""The ``reputation`` gossip domain: shared, stake-weighted server history.

Clients sign :class:`ReputationGossip` events about servers they dealt with
first-hand (hard negatives only — fraud, invalid responses, equivocation:
the kinds a newcomer most needs and a whitewasher would most like to fake
positively).  Receivers verify the reporter signature, weigh the event by
the reporter's **deposit-registry stake** (the Sybil resistance the paper's
§VIII sketch calls for — a thousand fresh keys with no collateral carry no
weight), and fold it into the local
:class:`~repro.parp.reputation.ReputationLedger` through ``merge_remote`` —
the path that can *never* hard-ban on gossip alone.

The poisoning math stacks three bounds: zero-stake reporters are dropped
outright, each reporter's negative influence per subject saturates at the
ledger's ``remote_budget``, and the merged events are soft — an honest
server smeared by a hostile minority sinks to the soft floor (last resort)
while every first-hand success keeps pulling it back up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..crypto import Signature, SignatureError, keccak256, recover_address
from ..crypto.keys import Address, PrivateKey
from ..parp.constants import HASH_BYTES, MIN_FULL_NODE_DEPOSIT, SIGNATURE_BYTES
from ..parp.messages import MessageError
from ..parp.reputation import (
    EVENT_EQUIVOCATION,
    EVENT_FRAUD_DETECTED,
    EVENT_FRAUD_SLASHED,
    EVENT_INVALID_RESPONSE,
    EVENT_KINDS,
    ReputationLedger,
)
from .pubsub import GossipMessage, GossipNode

__all__ = [
    "TOPIC_REPUTATION",
    "GOSSIPABLE_KINDS",
    "REPUTATION_GOSSIP_DOMAIN",
    "ReputationGossip",
    "ReputationShareStats",
    "ReputationShare",
]

TOPIC_REPUTATION = "parp/reputation/1"

REPUTATION_GOSSIP_DOMAIN = b"PARP_REP_GOSSIP_V1"

#: the only kinds worth relaying: first-hand-verifiable hard negatives.
#: Positive kinds are excluded by design — gossiped praise is free to fake
#: (a server's Sybils vouching for itself) while gossiped accusations are
#: bounded by stake and budget; honest trust is built first-hand.
GOSSIPABLE_KINDS = frozenset({
    EVENT_FRAUD_DETECTED,
    EVENT_FRAUD_SLASHED,
    EVENT_INVALID_RESPONSE,
    EVENT_EQUIVOCATION,
})

#: time quantization of the signed event (milliseconds).
_TIME_BYTES = 8


def reputation_digest(subject: Address, kind: str, evidence: bytes,
                      time_millis: int) -> bytes:
    return keccak256(
        REPUTATION_GOSSIP_DOMAIN + subject.to_bytes()
        + kind.encode("utf-8") + b"\x00" + evidence
        + time_millis.to_bytes(_TIME_BYTES, "big")
    )


@dataclass(frozen=True)
class ReputationGossip:
    """One signed foreign-experience event: (server, kind, evidence)."""

    subject: Address          # the server the event is about
    kind: str                 # one of GOSSIPABLE_KINDS
    evidence: bytes           # 32-byte digest of the backing evidence
    time_millis: int          # reporter-local event time
    signature: bytes          # reporter's 65-byte recoverable signature

    @classmethod
    def build(cls, subject: Address, kind: str, evidence: bytes,
              time_seconds: float, key: PrivateKey) -> "ReputationGossip":
        if kind not in GOSSIPABLE_KINDS:
            raise MessageError(f"kind {kind!r} is not gossipable")
        if len(evidence) != HASH_BYTES:
            raise MessageError("evidence must be a 32-byte digest")
        millis = max(0, int(time_seconds * 1000))
        sig = key.sign(reputation_digest(subject, kind, evidence, millis))
        return cls(subject=subject, kind=kind, evidence=evidence,
                   time_millis=millis, signature=sig.to_bytes())

    # -- wire ----------------------------------------------------------- #

    def encode(self) -> bytes:
        kind_b = self.kind.encode("utf-8")
        return (
            self.subject.to_bytes()
            + len(kind_b).to_bytes(1, "big") + kind_b
            + self.evidence
            + self.time_millis.to_bytes(_TIME_BYTES, "big")
            + self.signature
        )

    @classmethod
    def decode(cls, raw: bytes) -> "ReputationGossip":
        minimum = 20 + 1 + HASH_BYTES + _TIME_BYTES + SIGNATURE_BYTES
        if len(raw) < minimum:
            raise MessageError("reputation gossip event too short")
        subject = Address(raw[:20])
        kind_len = raw[20]
        pos = 21 + kind_len
        if len(raw) != minimum + kind_len:
            raise MessageError("reputation gossip event length mismatch")
        try:
            kind = raw[21:pos].decode("utf-8")
        except UnicodeDecodeError as exc:
            raise MessageError("undecodable event kind") from exc
        if kind not in EVENT_KINDS:
            raise MessageError(f"unknown event kind {kind!r}")
        evidence = raw[pos:pos + HASH_BYTES]; pos += HASH_BYTES
        millis = int.from_bytes(raw[pos:pos + _TIME_BYTES], "big")
        pos += _TIME_BYTES
        return cls(subject=subject, kind=kind, evidence=evidence,
                   time_millis=millis, signature=raw[pos:])

    # -- verification --------------------------------------------------- #

    def digest(self) -> bytes:
        return reputation_digest(self.subject, self.kind, self.evidence,
                                 self.time_millis)

    def signer(self) -> Address:
        try:
            return recover_address(self.digest(),
                                   Signature.from_bytes(self.signature))
        except SignatureError as exc:
            raise MessageError(f"bad reporter signature: {exc}") from exc

    @property
    def time(self) -> float:
        return self.time_millis / 1000.0


@dataclass
class ReputationShareStats:
    published: int = 0
    received: int = 0
    merged: int = 0
    own_echoes: int = 0           # our own events relayed back to us
    undecodable: int = 0
    bad_signature: int = 0
    ungossipable: int = 0         # valid signature, non-shareable kind
    understaked: int = 0          # reporter with zero admissible weight
    duplicates: int = 0           # same (reporter, evidence) seen before
    budget_capped: int = 0        # merges trimmed/refused by remote_budget


class ReputationShare:
    """Publish first-hand hard events; merge (discounted) foreign ones.

    ``stake_of`` maps a reporter address to its deposit-registry stake;
    the merge discount is ``foreign_discount × min(1, stake /
    reference_stake)`` — full foreign weight only for reporters staking at
    least a full node's collateral, nothing at all for the unstaked.
    Without a registry view (``stake_of=None``) every verified reporter
    gets the flat ``foreign_discount`` (closed-world tests).
    """

    def __init__(self, gossip: GossipNode, ledger: ReputationLedger,
                 key: PrivateKey,
                 stake_of: Optional[Callable[[Address], int]] = None,
                 reference_stake: int = MIN_FULL_NODE_DEPOSIT,
                 foreign_discount: float = 0.5,
                 clock: Optional[Callable[[], float]] = None) -> None:
        self.gossip = gossip
        self.ledger = ledger
        self.key = key
        self.stake_of = stake_of
        self.reference_stake = max(1, reference_stake)
        self.foreign_discount = foreign_discount
        self._clock = clock if clock is not None else gossip.network.clock.now
        self.stats = ReputationShareStats()
        #: (reporter, evidence digest) pairs already merged — the same
        #: accusation re-signed or replayed never double-counts
        self._merged: set[tuple[Address, bytes]] = set()
        gossip.subscribe(TOPIC_REPUTATION, self._on_event)

    @property
    def address(self) -> Address:
        return self.key.address

    def resubscribe(self) -> None:
        self.gossip.unsubscribe(TOPIC_REPUTATION, self._on_event)
        self.gossip.subscribe(TOPIC_REPUTATION, self._on_event)

    # ------------------------------------------------------------------ #
    # Publishing (first-hand events out)
    # ------------------------------------------------------------------ #

    def publish(self, subject: Address, kind: str,
                evidence: bytes = b"") -> Optional[ReputationGossip]:
        """Sign and gossip one first-hand event (non-gossipable kinds are
        silently kept local — callers can fire-and-forget every event)."""
        if kind not in GOSSIPABLE_KINDS:
            return None
        if len(evidence) != HASH_BYTES:
            evidence = keccak256(evidence)
        event = ReputationGossip.build(subject, kind, evidence,
                                       self._clock(), self.key)
        self.stats.published += 1
        self.gossip.publish(TOPIC_REPUTATION, event.encode())
        return event

    # ------------------------------------------------------------------ #
    # The subscription handler (foreign events in)
    # ------------------------------------------------------------------ #

    def _on_event(self, message: GossipMessage) -> None:
        self.stats.received += 1
        try:
            event = ReputationGossip.decode(message.payload)
        except MessageError:
            self.stats.undecodable += 1
            return
        try:
            reporter = event.signer()
        except MessageError:
            self.stats.bad_signature += 1
            return
        if reporter == self.address:
            self.stats.own_echoes += 1
            return
        if event.kind not in GOSSIPABLE_KINDS:
            self.stats.ungossipable += 1
            return
        dedup_key = (reporter, event.evidence)
        if dedup_key in self._merged:
            self.stats.duplicates += 1
            return
        discount = self._discount(reporter)
        if discount <= 0.0:
            self.stats.understaked += 1
            return
        self._merged.add(dedup_key)
        merged = self.ledger.merge_remote(event.subject, event.kind,
                                          self._clock(), reporter,
                                          discount=discount)
        if merged is None:
            self.stats.budget_capped += 1
            return
        self.stats.merged += 1

    def _discount(self, reporter: Address) -> float:
        if self.stake_of is None:
            return self.foreign_discount
        stake = self.stake_of(reporter)
        if stake <= 0:
            return 0.0
        return self.foreign_discount * min(1.0, stake / self.reference_stake)
