"""The read workload of §VI-A: balance queries that do not alter state.

"A read workload includes requests that query and retrieve data from the
blockchain without altering its state.  It is typical for data verification
and status checks."  The paper's reference read is ``eth_getBalance``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..crypto.keys import Address
from ..parp.client import LightClientSession
from .accounts import ZipfSelector

__all__ = ["ReadWorkloadResult", "ReadWorkload"]


@dataclass
class ReadWorkloadResult:
    """Aggregate outcome of a read run."""

    requests: int = 0
    balances: list[int] = field(default_factory=list)
    bytes_request: int = 0
    bytes_response: int = 0
    fees_paid: int = 0

    @property
    def avg_request_bytes(self) -> float:
        return self.bytes_request / self.requests if self.requests else 0.0

    @property
    def avg_response_bytes(self) -> float:
        return self.bytes_response / self.requests if self.requests else 0.0


class ReadWorkload:
    """Zipf-skewed balance polling over a fixed account population."""

    def __init__(self, targets: list[Address], zipf_exponent: float = 1.1,
                 seed: int = 7) -> None:
        if not targets:
            raise ValueError("need at least one target account")
        self.targets = targets
        self.selector = ZipfSelector(len(targets), zipf_exponent, seed)

    def next_target(self) -> Address:
        return self.targets[self.selector.pick()]

    def run(self, session: LightClientSession, requests: int) -> ReadWorkloadResult:
        """Issue ``requests`` paid, verified balance queries."""
        result = ReadWorkloadResult()
        start_spent = session.channel.spent if session.channel else 0
        for _ in range(requests):
            target = self.next_target()
            outcome = session.request("eth_getBalance", target)
            from ..parp.queries import decode_balance

            result.balances.append(decode_balance(outcome.response.result))
            result.requests += 1
            result.bytes_request += len(outcome.request.encode_wire())
            result.bytes_response += len(outcome.response.encode_wire())
        if session.channel:
            result.fees_paid = session.channel.spent - start_spent
        return result
