"""The write workload of §VI-A: signed transactions that change state.

The paper's reference write scenario is "a transaction in a block with 200
transactions" — the Merkle-proof benchmarks (Table III, Fig. 6) all hinge on
building blocks of a controlled size, which this module provides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..chain.block import Block
from ..chain.chain import Blockchain
from ..chain.transaction import Transaction, UnsignedTransaction
from ..crypto.keys import PrivateKey
from .accounts import AccountSet

__all__ = ["WriteWorkload", "build_block_with_size"]

TRANSFER_GAS = 21_000
DEFAULT_GAS_PRICE = 10 ** 9


@dataclass
class WriteWorkload:
    """Generates signed transfer transactions from a funded account set."""

    accounts: AccountSet
    gas_price: int = DEFAULT_GAS_PRICE
    _nonces: Optional[dict] = None

    def _nonce_for(self, chain: Blockchain, key: PrivateKey) -> int:
        if self._nonces is None:
            self._nonces = {}
        sender = key.address
        if sender not in self._nonces:
            self._nonces[sender] = chain.state.nonce_of(sender)
        nonce = self._nonces[sender]
        self._nonces[sender] += 1
        return nonce

    def make_transfer(self, chain: Blockchain, sender_index: int,
                      recipient_index: int, value: int = 1) -> Transaction:
        sender = self.accounts[sender_index % len(self.accounts)]
        recipient = self.accounts[recipient_index % len(self.accounts)]
        return UnsignedTransaction(
            nonce=self._nonce_for(chain, sender),
            gas_price=self.gas_price,
            gas_limit=TRANSFER_GAS,
            to=recipient.address,
            value=value,
        ).sign(sender)

    def fill_mempool(self, chain: Blockchain, count: int) -> list[Transaction]:
        """Queue ``count`` round-robin transfers; returns them in order."""
        txs = []
        for i in range(count):
            tx = self.make_transfer(chain, i, i + 1, value=1 + (i % 100))
            chain.add_transaction(tx)
            txs.append(tx)
        return txs


def build_block_with_size(chain: Blockchain, accounts: AccountSet,
                          num_transactions: int) -> Block:
    """Mine one block containing exactly ``num_transactions`` transfers.

    This is the paper's controlled-block-size scenario ("a block with 200
    transactions"); the returned block's transaction trie feeds the proof
    benchmarks.
    """
    if num_transactions > len(accounts):
        # reuse senders across multiple sequential nonces
        pass
    workload = WriteWorkload(accounts)
    workload.fill_mempool(chain, num_transactions)
    block = chain.build_block()
    if len(block.transactions) != num_transactions:
        raise RuntimeError(
            f"expected {num_transactions} txs in block, got "
            f"{len(block.transactions)} (gas limit too low?)"
        )
    return block
