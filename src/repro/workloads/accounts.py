"""Deterministic account populations and skewed access patterns.

Benchmarks need realistic state: many funded accounts, Zipf-distributed
access (a few hot accounts dominate queries — what real balance-polling
traffic looks like).  Everything is seeded for reproducibility.
"""

from __future__ import annotations

import random
from typing import Iterator, Sequence

from ..chain.genesis import GenesisConfig
from ..crypto.keys import Address, PrivateKey

__all__ = ["AccountSet", "ZipfSelector"]


class AccountSet:
    """A deterministic population of funded test accounts."""

    def __init__(self, count: int, seed: str = "workload",
                 balance: int = 10 ** 18) -> None:
        self.keys = [
            PrivateKey.from_seed(f"{seed}:account:{i}") for i in range(count)
        ]
        self.balance = balance

    def __len__(self) -> int:
        return len(self.keys)

    def __getitem__(self, index: int) -> PrivateKey:
        return self.keys[index]

    @property
    def addresses(self) -> list[Address]:
        return [key.address for key in self.keys]

    def genesis(self, base: GenesisConfig | None = None,
                extra: dict[Address, int] | None = None) -> GenesisConfig:
        """A genesis config funding every account (plus ``extra`` entries)."""
        allocations: dict[Address, int] = {
            key.address: self.balance for key in self.keys
        }
        if base is not None:
            allocations.update(base.allocations)
        if extra:
            allocations.update(extra)
        template = base or GenesisConfig()
        return GenesisConfig(
            chain_id=template.chain_id,
            allocations=allocations,
            gas_limit=template.gas_limit,
            timestamp=template.timestamp,
            extra_data=template.extra_data,
        )


class ZipfSelector:
    """Zipf-distributed index selection (rank-frequency skew)."""

    def __init__(self, population: int, exponent: float = 1.1,
                 seed: int = 7) -> None:
        if population <= 0:
            raise ValueError("population must be positive")
        self._rng = random.Random(seed)
        weights = [1.0 / (rank ** exponent) for rank in range(1, population + 1)]
        total = sum(weights)
        self._cumulative: list[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            self._cumulative.append(acc)

    def pick(self) -> int:
        needle = self._rng.random()
        lo, hi = 0, len(self._cumulative) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cumulative[mid] < needle:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def stream(self, n: int) -> Iterator[int]:
        for _ in range(n):
            yield self.pick()
