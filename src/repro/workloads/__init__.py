"""Workload generators: read/write traffic and the synthetic dApp dataset."""

from .accounts import AccountSet, ZipfSelector
from .dapp_traffic import PUBLISHED_SHARES, RpcCallRecord, generate_dataset
from .read import ReadWorkload, ReadWorkloadResult
from .write import WriteWorkload, build_block_with_size

__all__ = [
    "AccountSet",
    "ZipfSelector",
    "ReadWorkload",
    "ReadWorkloadResult",
    "WriteWorkload",
    "build_block_with_size",
    "RpcCallRecord",
    "generate_dataset",
    "PUBLISHED_SHARES",
]
