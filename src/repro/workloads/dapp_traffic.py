"""Synthetic dApp → node-provider traffic dataset (Table I substitute).

The paper analyzes the Torres et al. (USENIX Security '23) web-traffic
dataset: of 1572 dApps, 383 issue JSON-RPC calls straight from their
frontend to node providers; mapping those calls to providers yields the
traffic shares of Table I (Infura 47.52%, Alchemy 31.07%, Binance 12.01%,
Ankr 9.4%, Cloudflare 6.79%, …).

We cannot ship the Zenodo dataset, so this module *synthesizes* a record set
with the same schema (dApp id, provider, endpoint URL, call count) whose
aggregate marginals match the published numbers; the analysis pipeline in
:mod:`repro.analysis.traffic` then runs unchanged on either real or
synthetic records.  A dApp may connect to several providers, exactly like
the paper notes ("a single dApp can connect to multiple providers").
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = [
    "PUBLISHED_SHARES",
    "TOTAL_RPC_DAPPS",
    "TOTAL_DATASET_DAPPS",
    "RpcCallRecord",
    "generate_dataset",
]

#: Provider shares published in Table I: provider -> (dApps connecting, share).
PUBLISHED_SHARES: dict[str, tuple[int, float]] = {
    "infura": (182, 0.4752),
    "alchemy": (119, 0.3107),
    "binance": (46, 0.1201),
    "ankr": (36, 0.0940),
    "cloudflare": (26, 0.0679),
    "quicknode": (16, 0.0418),
    "chainstack": (5, 0.0131),
}

#: dApps that send JSON-RPC calls directly from their frontend.
TOTAL_RPC_DAPPS = 383
#: all dApps in the Torres et al. crawl.
TOTAL_DATASET_DAPPS = 1572

_PROVIDER_HOSTS = {
    "infura": "mainnet.infura.io",
    "alchemy": "eth-mainnet.g.alchemy.com",
    "binance": "bsc-dataseed.binance.org",
    "ankr": "rpc.ankr.com",
    "cloudflare": "cloudflare-eth.com",
    "quicknode": "solitary-little-glitter.quiknode.pro",
    "chainstack": "nd-123-456-789.p2pify.com",
}

_COMMON_METHODS = (
    "eth_call", "eth_getBalance", "eth_blockNumber", "eth_chainId",
    "eth_getLogs", "eth_estimateGas", "eth_gasPrice", "eth_sendRawTransaction",
)


@dataclass(frozen=True)
class RpcCallRecord:
    """One observed frontend JSON-RPC flow: a dApp talking to a provider."""

    dapp_id: int
    provider: str
    endpoint_host: str
    method: str
    call_count: int


def generate_dataset(seed: int = 42) -> list[RpcCallRecord]:
    """Synthesize records whose per-provider dApp counts equal Table I's.

    Each provider ``p`` must end up with exactly ``PUBLISHED_SHARES[p][0]``
    distinct dApps.  dApps are assigned greedily with overlap (multi-provider
    dApps), mirroring how 430 connections fold into 383 dApps.
    """
    rng = random.Random(seed)
    connection_counts = {p: n for p, (n, _) in PUBLISHED_SHARES.items()}
    providers = list(connection_counts)

    # Assign each provider a set of dApp ids from the 383-dApp pool such that
    # every dApp gets at least one provider and counts match exactly.
    dapp_ids = list(range(TOTAL_RPC_DAPPS))
    assignments: dict[str, set[int]] = {p: set() for p in providers}

    # Pass 1: guarantee coverage — every dApp connects to one provider,
    # drawn proportionally to the remaining quota.
    quotas = dict(connection_counts)
    shuffled = dapp_ids[:]
    rng.shuffle(shuffled)
    for dapp in shuffled:
        open_providers = [p for p in providers if quotas[p] > len(assignments[p])]
        if not open_providers:
            open_providers = providers
        weights = [quotas[p] - len(assignments[p]) + 1e-9 for p in open_providers]
        choice = rng.choices(open_providers, weights=weights)[0]
        assignments[choice].add(dapp)

    # Pass 2: fill each provider's remaining quota with extra (multi-homed)
    # dApps that are not yet connected to it.
    for provider in providers:
        missing = connection_counts[provider] - len(assignments[provider])
        candidates = [d for d in dapp_ids if d not in assignments[provider]]
        rng.shuffle(candidates)
        for dapp in candidates[:max(0, missing)]:
            assignments[provider].add(dapp)

    records: list[RpcCallRecord] = []
    for provider, dapps in assignments.items():
        host = _PROVIDER_HOSTS[provider]
        for dapp in sorted(dapps):
            method = rng.choice(_COMMON_METHODS)
            records.append(RpcCallRecord(
                dapp_id=dapp,
                provider=provider,
                endpoint_host=host,
                method=method,
                call_count=rng.randint(1, 500),
            ))
    rng.shuffle(records)
    return records
