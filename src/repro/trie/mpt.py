"""Merkle Patricia Trie (MPT) — Ethereum's authenticated key/value store.

Block headers commit to three MPT roots (state, transactions, receipts); PARP
light clients verify RPC responses against those roots using Merkle proofs
(paper §IV-A "Trust and verification", §V-D "Verify Merkle Proof").  This
module implements the full trie: leaf/extension/branch nodes, hex-prefix
paths, ``keccak256(rlp(node))`` hashing with sub-32-byte node inlining, and
deletion with node collapsing.

Node model (decoded RLP shapes):

* blank      — ``b""`` (absent subtree)
* leaf       — ``[hp(path, leaf=True), value]``
* extension  — ``[hp(path, leaf=False), ref]``
* branch     — ``[ref0 … ref15, value]`` (17 items)

A *ref* is either the 32-byte keccak hash of the child's RLP encoding, or —
when that encoding is shorter than 32 bytes — the decoded child node itself,
inlined into the parent (Yellow Paper, eq. 195).  The root is always referred
to by hash; the empty trie root is ``keccak256(rlp(b""))``.

Write overlay with deferred hashing
-----------------------------------

Mutations never touch the hash layer.  ``put``/``delete`` rebuild the touched
path as plain decoded lists held in memory (the *overlay*): a child reference
inside the overlay is simply the child's decoded list, exactly the shape an
inlined node already has.  RLP encoding and keccak hashing happen once per
distinct node at :meth:`commit`, which flushes the overlay bottom-up into the
backing store and returns the new root — the same dirty-node architecture
Geth uses for its state trie.  Reading :attr:`root_hash` (or calling
:meth:`snapshot`) commits implicitly, so the public contract is unchanged:
roots are bit-for-bit identical to hashing eagerly on every ``put``, and
``at_root``/snapshots keep working off root hashes.  What changes is the
cost: a bulk ``update`` of N keys performs O(distinct dirty nodes) hash and
encode operations instead of O(N × depth).

Reads share a bounded decoded-node LRU (hash → decoded node) so that proof
serving and repeated lookups stop paying ``rlp.decode`` once a node has been
seen; views created via :meth:`at_root` share the cache with their parent.

Node store
----------

Committed nodes live behind a :class:`~repro.storage.NodeStore` — the
in-memory dict backend of the seed, or an append-only disk log
(:class:`~repro.storage.AppendOnlyFileStore`) for state bigger than RAM.
The constructor still accepts a raw dict (wrapped by reference) for
backward compatibility; :meth:`commit` ends by handing the new root to
``store.commit``, which is where a durable backend flushes its batch
atomically.  One overlay flush therefore equals one crash-consistent disk
batch.
"""

from __future__ import annotations

from typing import Iterator, Optional, Union

from ..crypto.keccak import KECCAK_EMPTY_RLP, keccak256
from ..metrics.cache import LRUCache
from ..rlp import codec as rlp
from ..storage.nodestore import NodeStore, PrunedRootError, as_node_store
from .nibbles import (
    Nibbles,
    bytes_to_nibbles,
    common_prefix_length,
    hp_decode,
    hp_encode,
)

__all__ = [
    "MerklePatriciaTrie",
    "EMPTY_TRIE_ROOT",
    "TrieError",
    "DEFAULT_NODE_CACHE_CAPACITY",
]

EMPTY_TRIE_ROOT = KECCAK_EMPTY_RLP

_BLANK = b""

#: Default bound for the shared decoded-node LRU.  Sized so the upper levels
#: of a multi-million-key trie (the part every lookup and proof traverses)
#: stay resident; leaves churn through the tail.
DEFAULT_NODE_CACHE_CAPACITY = 65536


class TrieError(Exception):
    """Raised on structurally impossible trie states (corrupt store)."""


class MerklePatriciaTrie:
    """A hash-addressed Merkle Patricia Trie with a write overlay.

    Committed nodes whose RLP encoding is >= 32 bytes live in ``self._db``
    keyed by their keccak hash; smaller nodes are inlined in their parents.
    The store is append-only, so snapshots are simply remembered root hashes
    (used by the chain's state history).  Uncommitted mutations live as
    decoded lists reachable from ``self._root_node`` and are hashed exactly
    once, by :meth:`commit`.
    """

    def __init__(self, db: Union[None, dict, NodeStore, str] = None,
                 root_hash: bytes = EMPTY_TRIE_ROOT,
                 node_cache: Optional[LRUCache] = None) -> None:
        self._db: NodeStore = as_node_store(db)
        if root_hash != EMPTY_TRIE_ROOT and root_hash not in self._db:
            if root_hash in self._db.pruned_roots:
                raise PrunedRootError(
                    f"state root {root_hash.hex()} was pruned by store "
                    "compaction; only roots inside the retention window "
                    "stay resolvable"
                )
            raise TrieError(f"unknown root hash {root_hash.hex()}")
        #: committed root; None exactly while the overlay holds dirty nodes
        self._root_hash: Optional[bytes] = root_hash
        #: decoded working root while dirty (may be _BLANK after deletes)
        self._root_node: rlp.Item = _BLANK
        self._cache: LRUCache = (
            node_cache if node_cache is not None
            else LRUCache(capacity=DEFAULT_NODE_CACHE_CAPACITY)
        )

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    @property
    def root_hash(self) -> bytes:
        """The 32-byte commitment to the entire current contents.

        Reading the root forces a :meth:`commit` of any pending overlay, so
        callers always observe a root resolvable from the backing store.
        """
        return self.commit()

    @property
    def db(self) -> NodeStore:
        """The backing node store (hash -> rlp(node))."""
        return self._db

    @property
    def is_empty(self) -> bool:
        """True when the trie holds no keys — overlay included, no hashing."""
        if self._root_hash is not None:
            return self._root_hash == EMPTY_TRIE_ROOT
        return self._root_node == _BLANK

    @property
    def node_cache(self) -> LRUCache:
        """The shared decoded-node LRU (hash -> decoded node)."""
        return self._cache

    def commit(self, flush_store: bool = True) -> bytes:
        """Hash + persist every dirty overlay node once; return the root.

        Idempotent: with no pending writes this is a field read.  This is the
        single place the engine pays ``rlp.encode`` + ``keccak256``, which is
        what turns an N-key bulk load from O(N × depth) hashing round trips
        into O(distinct dirty nodes).  It is also the durability point: the
        flushed nodes and the new root are handed to the node store's own
        ``commit``, which a disk-backed store writes as one atomic batch.

        ``flush_store=False`` stages the nodes in the store but skips its
        ``commit`` — for callers composing several trie flushes into one
        atomic batch (``StateDB.commit`` flushes every dirty storage trie
        this way, then lets the account-trie commit tag the single batch
        with the *state* root, so crash recovery can only ever land on a
        state root, never a storage-subtree root).
        """
        if self._root_hash is not None:
            return self._root_hash
        node = self._root_node
        if node == _BLANK:
            self._root_hash = EMPTY_TRIE_ROOT
        else:
            ref = self._commit_node(node)
            if isinstance(ref, bytes):
                self._root_hash = ref
            else:  # root encodes under 32 bytes: still stored by hash
                encoded = rlp.encode(ref)
                root = keccak256(encoded)
                self._db[root] = encoded
                self._cache.put(root, ref)
                self._root_hash = root
        self._root_node = _BLANK
        if flush_store:
            self._db.commit(self._root_hash)
        return self._root_hash

    def get(self, key: bytes) -> Optional[bytes]:
        """Return the value stored under ``key``, or None when absent."""
        return self._get(self._current_root(), bytes_to_nibbles(key))

    def put(self, key: bytes, value: bytes) -> None:
        """Insert or update ``key``; empty values are disallowed (use delete).

        The write lands in the in-memory overlay; no hashing happens until
        :meth:`commit` (or a :attr:`root_hash` read).
        """
        if not isinstance(value, bytes):
            raise TypeError(f"trie values must be bytes, got {type(value).__name__}")
        if value == b"":
            raise ValueError("empty values are not storable; use delete()")
        self._root_node = self._put(self._current_root(),
                                    bytes_to_nibbles(key), value)
        self._root_hash = None

    def delete(self, key: bytes) -> bool:
        """Remove ``key``; returns True when the key was present."""
        node = self._current_root()
        if self._get(node, bytes_to_nibbles(key)) is None:
            return False
        self._root_node = self._delete(node, bytes_to_nibbles(key))
        self._root_hash = None
        return True

    def update(self, items: dict[bytes, bytes]) -> None:
        """Bulk insert: all writes share one overlay and one later commit.

        The whole batch costs a single hashing pass over the distinct dirty
        nodes when the root is next read.  No intermediate state is hashed
        or persisted, so (unlike the eager reference engine) insertion
        order is unobservable and the keys need no sorting.
        """
        for key, value in items.items():
            self.put(key, value)

    def items(self) -> Iterator[tuple[bytes, bytes]]:
        """Iterate all (key, value) pairs in lexicographic key order."""
        yield from self._iter(self._current_root(), ())

    def snapshot(self) -> bytes:
        """Commit and return the root hash (re-attachable via the constructor)."""
        return self.commit()

    def at_root(self, root_hash: bytes) -> "MerklePatriciaTrie":
        """A read view of this trie at a historical root.

        Shares both the node store and the decoded-node cache, so views
        created per-request (the PARP serving path) reuse each other's
        decode work.
        """
        return MerklePatriciaTrie(self._db, root_hash, node_cache=self._cache)

    def load_node(self, node_hash: bytes,
                  encoded: Optional[bytes] = None) -> rlp.Item:
        """Decoded node for ``node_hash``, through the shared LRU.

        Used by the proof generator so serving a proof costs dictionary
        lookups, not one ``rlp.decode`` per node per request.  Callers that
        already hold the encoded bytes (the proof walk fetches them for the
        proof itself) pass them via ``encoded`` so a cache miss decodes in
        place instead of re-reading the store.
        """
        return self._load(node_hash, encoded)

    def __contains__(self, key: bytes) -> bool:
        return self.get(key) is not None

    def __len__(self) -> int:
        return sum(1 for _ in self.items())

    # ------------------------------------------------------------------ #
    # Node store plumbing
    # ------------------------------------------------------------------ #

    def _current_root(self) -> rlp.Item:
        """The working root node: overlay if dirty, else store-resident."""
        if self._root_hash is None:
            return self._root_node
        if self._root_hash == EMPTY_TRIE_ROOT:
            return _BLANK
        return self._load(self._root_hash)

    def _load(self, node_hash: bytes,
              encoded: Optional[bytes] = None) -> rlp.Item:
        node = self._cache.get(node_hash)
        if node is not None:
            return node
        if encoded is None:
            encoded = self._db.get(node_hash)
            if encoded is None:
                raise TrieError(f"missing trie node {node_hash.hex()}")
        node = rlp.decode(encoded)
        self._cache.put(node_hash, node)
        return node

    def _resolve(self, ref: rlp.Item) -> rlp.Item:
        """Follow a child reference: hash -> stored node, node -> itself.

        A list reference is either an inlined sub-32-byte node or a dirty
        overlay node; both are already decoded.  Resolved nodes are shared
        (cache or sibling trees) and must never be mutated in place — the
        mutation paths below always build fresh lists.
        """
        if isinstance(ref, bytes):
            if ref == _BLANK:
                return _BLANK
            if len(ref) == 32:
                return self._load(ref)
            raise TrieError(f"invalid node reference of {len(ref)} bytes")
        return ref

    def _commit_node(self, node: list) -> rlp.Item:
        """Flush one overlay subtree bottom-up; return its parent reference.

        List-valued children are recursively committed first (a leaf's value
        is bytes, so only extension children and branch slots recurse); then
        this node is encoded once and either stored under its hash or, when
        it encodes under 32 bytes, returned whole for inlining.
        """
        if len(node) == 17:
            out: Optional[list] = None
            for i in range(16):
                child = node[i]
                if isinstance(child, list):
                    ref = self._commit_node(child)
                    if ref is not child:
                        if out is None:
                            out = list(node)
                        out[i] = ref
            committed: rlp.Item = out if out is not None else node
        else:  # leaf (value is bytes) or extension (child may be a list)
            committed = node
            child = node[1]
            if isinstance(child, list):
                ref = self._commit_node(child)
                if ref is not child:
                    committed = [node[0], ref]
        encoded = rlp.encode(committed)
        if len(encoded) < 32:
            return committed
        node_hash = keccak256(encoded)
        self._db[node_hash] = encoded
        self._cache.put(node_hash, committed)
        return node_hash

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #

    def _get(self, node: rlp.Item, path: Nibbles) -> Optional[bytes]:
        while True:
            if node == _BLANK:
                return None
            if not isinstance(node, list):
                raise TrieError("corrupt trie node (expected list)")
            if len(node) == 17:  # branch
                if not path:
                    value = node[16]
                    return value if value != _BLANK else None
                node = self._resolve(node[path[0]])
                path = path[1:]
                continue
            node_path, is_leaf = hp_decode(node[0])
            if is_leaf:
                return node[1] if node_path == path else None
            # extension
            if path[: len(node_path)] != node_path:
                return None
            node = self._resolve(node[1])
            path = path[len(node_path):]

    # ------------------------------------------------------------------ #
    # Insertion (overlay: children are linked as decoded lists, no hashing)
    # ------------------------------------------------------------------ #

    def _put(self, node: rlp.Item, path: Nibbles, value: bytes) -> rlp.Item:
        if node == _BLANK:
            return [hp_encode(path, is_leaf=True), value]
        if len(node) == 17:
            return self._put_branch(node, path, value)
        node_path, is_leaf = hp_decode(node[0])
        if is_leaf:
            return self._put_leaf(node, node_path, path, value)
        return self._put_extension(node, node_path, path, value)

    def _put_branch(self, node: list, path: Nibbles, value: bytes) -> rlp.Item:
        new_node = list(node)
        if not path:
            new_node[16] = value
            return new_node
        child = self._resolve(node[path[0]])
        new_node[path[0]] = self._put(child, path[1:], value)
        return new_node

    def _put_leaf(self, node: list, node_path: Nibbles, path: Nibbles,
                  value: bytes) -> rlp.Item:
        if node_path == path:
            return [node[0], value]
        shared = common_prefix_length(node_path, path)
        branch: list = [_BLANK] * 17
        # place the existing leaf under the branch
        old_rest = node_path[shared:]
        if old_rest:
            branch[old_rest[0]] = [hp_encode(old_rest[1:], is_leaf=True), node[1]]
        else:
            branch[16] = node[1]
        # place the new value under the branch
        new_rest = path[shared:]
        if new_rest:
            branch[new_rest[0]] = [hp_encode(new_rest[1:], is_leaf=True), value]
        else:
            branch[16] = value
        if shared:
            return [hp_encode(path[:shared], is_leaf=False), branch]
        return branch

    def _put_extension(self, node: list, node_path: Nibbles, path: Nibbles,
                       value: bytes) -> rlp.Item:
        shared = common_prefix_length(node_path, path)
        if shared == len(node_path):  # descend through the extension
            child = self._resolve(node[1])
            return [node[0], self._put(child, path[shared:], value)]
        # split the extension at the divergence point
        branch: list = [_BLANK] * 17
        ext_rest = node_path[shared:]
        if len(ext_rest) == 1:
            branch[ext_rest[0]] = node[1]
        else:
            branch[ext_rest[0]] = [hp_encode(ext_rest[1:], is_leaf=False), node[1]]
        new_rest = path[shared:]
        if new_rest:
            branch[new_rest[0]] = [hp_encode(new_rest[1:], is_leaf=True), value]
        else:
            branch[16] = value
        if shared:
            return [hp_encode(path[:shared], is_leaf=False), branch]
        return branch

    # ------------------------------------------------------------------ #
    # Deletion (with branch collapsing)
    # ------------------------------------------------------------------ #

    def _delete(self, node: rlp.Item, path: Nibbles) -> rlp.Item:
        if node == _BLANK:
            return _BLANK
        if len(node) == 17:
            return self._delete_branch(node, path)
        node_path, is_leaf = hp_decode(node[0])
        if is_leaf:
            return _BLANK if node_path == path else node
        if path[: len(node_path)] != node_path:
            return node
        child = self._resolve(node[1])
        new_child = self._delete(child, path[len(node_path):])
        return self._merge_extension(node_path, new_child)

    def _delete_branch(self, node: list, path: Nibbles) -> rlp.Item:
        new_node = list(node)
        if not path:
            new_node[16] = _BLANK
        else:
            child = self._resolve(node[path[0]])
            new_node[path[0]] = self._delete(child, path[1:])
        return self._normalize_branch(new_node)

    def _normalize_branch(self, node: list) -> rlp.Item:
        """Collapse a branch left with <2 occupied slots after a delete."""
        occupied = [i for i in range(16) if node[i] != _BLANK]
        has_value = node[16] != _BLANK
        if len(occupied) + int(has_value) >= 2:
            return node
        if has_value:  # value only: becomes a leaf with empty path
            return [hp_encode((), is_leaf=True), node[16]]
        if not occupied:  # empty branch: vanishes
            return _BLANK
        index = occupied[0]
        child = self._resolve(node[index])
        return self._merge_extension((index,), child)

    def _merge_extension(self, prefix: Nibbles, child: rlp.Item) -> rlp.Item:
        """Prepend ``prefix`` to ``child``, merging path-bearing nodes."""
        if child == _BLANK:
            return _BLANK
        if len(child) == 17:
            return [hp_encode(prefix, is_leaf=False), child]
        child_path, is_leaf = hp_decode(child[0])
        merged = prefix + child_path
        return [hp_encode(merged, is_leaf=is_leaf), child[1]]

    # ------------------------------------------------------------------ #
    # Iteration
    # ------------------------------------------------------------------ #

    def _iter(self, node: rlp.Item, prefix: Nibbles) -> Iterator[tuple[bytes, bytes]]:
        if node == _BLANK:
            return
        if len(node) == 17:
            if node[16] != _BLANK:
                yield self._nibbles_to_key(prefix), node[16]
            for i in range(16):
                if node[i] != _BLANK:
                    yield from self._iter(self._resolve(node[i]), prefix + (i,))
            return
        node_path, is_leaf = hp_decode(node[0])
        if is_leaf:
            yield self._nibbles_to_key(prefix + node_path), node[1]
        else:
            yield from self._iter(self._resolve(node[1]), prefix + node_path)

    @staticmethod
    def _nibbles_to_key(nibbles: Nibbles) -> bytes:
        if len(nibbles) % 2:
            raise TrieError("odd-length key path in trie")
        return bytes(
            (nibbles[i] << 4) | nibbles[i + 1] for i in range(0, len(nibbles), 2)
        )
