"""Sharding the account trie by address-hash prefix.

The serving capacity of one PARP full node is bounded by one machine; the
marketplace answer is to partition the *account space* across N serving
nodes.  Because secure-trie keys are ``keccak256(address)`` — uniformly
distributed — the natural shard boundary is the first key nibble: shard
``i`` of ``N`` (``N`` dividing 16) owns the subtrees hanging off root-branch
slots ``[i·16/N, (i+1)·16/N)``.

Three facts make this partition serve verifiable queries with **zero new
verification machinery**:

* A *slice* of the trie — the root node plus the subtrees of the owned
  nibbles (:func:`extract_shard_nodes`) — generates proofs that are
  bit-for-bit the proofs the full trie would generate for in-range keys,
  so they verify against the **global** state root in the block header.
  The §V-D checks of the light client do not change.
* A slice physically *cannot* prove anything about out-of-range keys: the
  walk dead-ends on a missing node immediately below the root.  Range
  enforcement is structural, not advisory.
* The root node itself, with out-of-range children masked
  (:func:`shard_head`), is a per-shard commitment *under* the global root:
  :func:`combine_shard_heads` over a full partition re-hashes to exactly
  the global root, so a directory (or an auditor) can check that N shard
  heads jointly cover the state a header commits to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..crypto.keccak import keccak256
from ..rlp import codec as rlp
from .mpt import EMPTY_TRIE_ROOT, MerklePatriciaTrie, TrieError
from .nibbles import Nibbles, hp_decode, nibbles_to_bytes

__all__ = [
    "ShardError",
    "ShardRange",
    "ShardSlice",
    "shard_of_key",
    "extract_shard_nodes",
    "collect_subtree",
    "shard_head",
    "shard_commitment",
    "combine_shard_heads",
]

_BLANK = b""

#: the radix of the partition space: one shard boundary per root-branch slot.
SHARD_NIBBLES = 16


class ShardError(Exception):
    """Invalid shard geometry or an inconsistent set of shard heads."""


def _check_count(count: int) -> int:
    """Shard counts must divide 16 so ranges align on nibble boundaries."""
    if count not in (1, 2, 4, 8, 16):
        raise ShardError(
            f"shard count must divide {SHARD_NIBBLES} (got {count}); "
            "ranges are nibble-aligned so slices sit on trie node boundaries"
        )
    return count


@dataclass(frozen=True, order=True)
class ShardRange:
    """A half-open range ``[lo, hi)`` of first-nibble values in [0, 16).

    The unit every layer shares: servers materialize a slice for their
    range, advertisements carry it, clients route keys by it, and the §V-D
    story stays unchanged because slices prove against the global root.
    """

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if not (0 <= self.lo < self.hi <= SHARD_NIBBLES):
            raise ShardError(f"invalid shard range [{self.lo}, {self.hi})")

    @classmethod
    def of(cls, index: int, count: int) -> "ShardRange":
        """Range of shard ``index`` in an even ``count``-way partition."""
        _check_count(count)
        if not 0 <= index < count:
            raise ShardError(f"shard index {index} out of range for {count} shards")
        width = SHARD_NIBBLES // count
        return cls(index * width, (index + 1) * width)

    @classmethod
    def full(cls) -> "ShardRange":
        return cls(0, SHARD_NIBBLES)

    @property
    def is_full(self) -> bool:
        return self.lo == 0 and self.hi == SHARD_NIBBLES

    @property
    def label(self) -> str:
        return f"[{self.lo:x}..{self.hi - 1:x}]"

    def covers_nibble(self, nibble: int) -> bool:
        return self.lo <= nibble < self.hi

    def covers(self, hashed_key: bytes) -> bool:
        """Whether a (hashed, secure-trie) key routes to this shard."""
        if not hashed_key:
            return self.covers_nibble(0)
        return self.covers_nibble(hashed_key[0] >> 4)

    def to_tuple(self) -> tuple[int, int]:
        """Wire-friendly form (advertisements, probes)."""
        return (self.lo, self.hi)

    @classmethod
    def from_tuple(cls, pair: Sequence[int]) -> "ShardRange":
        if len(pair) != 2:
            raise ShardError(f"shard range tuple needs 2 items, got {len(pair)}")
        return cls(int(pair[0]), int(pair[1]))


def shard_of_key(hashed_key: bytes, count: int) -> int:
    """Which shard of an even ``count``-way partition owns ``hashed_key``.

    Consistent with :meth:`ShardRange.covers` by construction — the property
    tests pin client, server, and directory to this one routing function.
    """
    _check_count(count)
    if not hashed_key:
        return 0
    return (hashed_key[0] >> 4) * count // SHARD_NIBBLES


@dataclass(frozen=True)
class ShardSlice:
    """One shard's materialized view of a trie.

    ``nodes`` is the pruned node set (root node + in-range subtrees);
    ``items`` are the in-range (key, value) pairs, which the state layer
    uses to pull in the storage subtrees of in-range accounts.
    """

    shard: ShardRange
    root: bytes
    nodes: dict[bytes, bytes]
    items: tuple[tuple[bytes, bytes], ...]


def extract_shard_nodes(trie: MerklePatriciaTrie,
                        shard: ShardRange) -> ShardSlice:
    """The pruned node set a shard server materializes for ``shard``.

    Always includes the root node (every proof starts there, and exclusion
    proofs for absent in-range keys may end there); descends only into
    subtrees whose leading nibble path intersects the range.  Proofs
    generated from the slice are identical to full-trie proofs for in-range
    keys; out-of-range keys dead-end on a missing node (:class:`ProofError`
    from the proof layer) — the structural range enforcement.
    """
    root = trie.root_hash  # commits any pending overlay
    nodes: dict[bytes, bytes] = {}
    items: list[tuple[bytes, bytes]] = []
    if root == EMPTY_TRIE_ROOT:
        return ShardSlice(shard, root, nodes, ())
    encoded = trie.db.get(root)
    if encoded is None:
        raise TrieError(f"missing root node {root.hex()}")
    nodes[root] = encoded
    node = trie.load_node(root, encoded)

    def collect(ref: rlp.Item, prefix: Nibbles) -> None:
        """Collect an entire subtree (nodes by hash + leaf items)."""
        if isinstance(ref, bytes):
            if ref == _BLANK:
                return
            raw = trie.db.get(ref)
            if raw is None:
                raise TrieError(f"missing trie node {ref.hex()}")
            nodes[ref] = raw
            child = trie.load_node(ref, raw)
        else:
            child = ref  # inlined: already part of the parent's encoding
        if len(child) == 17:
            if child[16] != _BLANK:
                items.append((nibbles_to_bytes(prefix), child[16]))
            for i in range(16):
                collect(child[i], prefix + (i,))
            return
        path, is_leaf = hp_decode(child[0])
        if is_leaf:
            items.append((nibbles_to_bytes(prefix + path), child[1]))
        else:
            collect(child[1], prefix + path)

    if len(node) == 17:
        # branch root: keep exactly the owned slots; the root-branch value
        # (an empty key — impossible for fixed-width hashed keys) stays with
        # the shard owning nibble 0
        if node[16] != _BLANK and shard.covers_nibble(0):
            items.append((b"", node[16]))
        for i in range(16):
            if shard.covers_nibble(i):
                collect(node[i], (i,))
    else:
        # leaf/extension root: the whole trie hangs off one nibble path; the
        # covering shard owns all of it, every other shard holds just the
        # root node (enough to prove any in-range key absent)
        path, _ = hp_decode(node[0])
        head = path[0] if path else 0
        if shard.covers_nibble(head):
            if hp_decode(node[0])[1]:
                items.append((nibbles_to_bytes(path), node[1]))
            else:
                collect(node[1], path)
    return ShardSlice(shard, root, nodes, tuple(items))


def collect_subtree(db, root_hash: bytes) -> dict[bytes, bytes]:
    """Every stored node reachable from ``root_hash`` (storage tries of
    in-range accounts are pulled into a slice whole)."""
    nodes: dict[bytes, bytes] = {}
    if root_hash == EMPTY_TRIE_ROOT:
        return nodes

    def walk(ref: rlp.Item) -> None:
        if isinstance(ref, bytes):
            if ref == _BLANK:
                return
            if ref in nodes:
                return
            raw = db.get(ref)
            if raw is None:
                raise TrieError(f"missing trie node {ref.hex()}")
            nodes[ref] = raw
            node = rlp.decode(raw)
        else:
            node = ref
        if len(node) == 17:
            for i in range(16):
                walk(node[i])
        elif not hp_decode(node[0])[1]:
            walk(node[1])

    walk(root_hash)
    return nodes


def shard_head(trie: MerklePatriciaTrie, shard: ShardRange) -> rlp.Item:
    """The shard's masked root node — its commitment *under* the global root.

    For a branch root: the root node with out-of-range children blanked
    (the value slot, keyed by the empty path, rides with every head — it is
    part of the shared envelope, like the node shape itself).  For a
    leaf/extension root: the node itself when the shard covers its leading
    nibble, blank otherwise.  :func:`combine_shard_heads` over a full
    partition reconstructs the root node exactly.
    """
    root = trie.root_hash
    if root == EMPTY_TRIE_ROOT:
        return _BLANK
    node = trie.load_node(root)
    if len(node) == 17:
        masked: list = [
            node[i] if shard.covers_nibble(i) else _BLANK for i in range(16)
        ]
        masked.append(node[16])
        return masked
    path, _ = hp_decode(node[0])
    head = path[0] if path else 0
    return node if shard.covers_nibble(head) else _BLANK


def shard_commitment(trie: MerklePatriciaTrie, shard: ShardRange) -> bytes:
    """32-byte commitment to one shard's head: range bounds + masked root.

    What a shard server exposes through its free ``shard_info`` probe; two
    honest servers of the same shard at the same height must agree on it,
    and it is recomputable from any full node's state for auditing.
    """
    head = shard_head(trie, shard)
    return keccak256(bytes([shard.lo, shard.hi]) + rlp.encode(head))


def combine_shard_heads(
        heads: Iterable[tuple[ShardRange, rlp.Item]]) -> bytes:
    """Recombine a full partition's shard heads into the global root hash.

    The testable statement of "per-shard roots committed under the global
    root": masking is lossless over a complete, disjoint partition, so
    merging the masked root nodes and hashing must reproduce the root the
    block header commits to.  Raises :class:`ShardError` on gaps, overlaps,
    or heads that disagree about the shared envelope.
    """
    ordered = sorted(heads, key=lambda pair: pair[0].lo)
    if not ordered:
        raise ShardError("no shard heads to combine")
    cursor = 0
    for shard, _ in ordered:
        if shard.lo != cursor:
            raise ShardError(
                f"shard ranges do not partition the keyspace: gap/overlap "
                f"at nibble {cursor} (next range {shard.label})"
            )
        cursor = shard.hi
    if cursor != SHARD_NIBBLES:
        raise ShardError(f"shard ranges stop at nibble {cursor}, not 16")

    branches = [(s, h) for s, h in ordered if isinstance(h, list) and len(h) == 17]
    if branches:
        if len(branches) != len(ordered):
            raise ShardError("shard heads disagree on the root node shape")
        values = {rlp.encode(h[16]) for _, h in branches}
        if len(values) != 1:
            raise ShardError("shard heads disagree on the root value slot")
        merged: list = [_BLANK] * 16 + [branches[0][1][16]]
        for shard, head in branches:
            for i in range(16):
                if shard.covers_nibble(i):
                    merged[i] = head[i]
                elif head[i] != _BLANK:
                    raise ShardError(
                        f"shard {shard.label} head claims out-of-range "
                        f"nibble {i:x}"
                    )
        return keccak256(rlp.encode(merged))

    # non-branch root: exactly one shard holds the node, the rest are blank
    present = [(s, h) for s, h in ordered if h != _BLANK]
    if not present:
        return EMPTY_TRIE_ROOT
    if len(present) != 1:
        raise ShardError("multiple shards claim a non-branch root")
    return keccak256(rlp.encode(present[0][1]))
