"""Reference (pre-overlay) Merkle Patricia Trie — the naive hashing engine.

This is the original eager implementation that :class:`~repro.trie.mpt.
MerklePatriciaTrie` replaced: every ``put`` re-RLP-encodes and re-keccaks the
entire root path (O(depth) hash round trips per key) and every node visit
re-decodes the node from the backing store.  It is kept, verbatim in
behaviour, for two jobs:

* the **differential oracle** of the overlay engine's property suite
  (``tests/property/test_prop_trie_overlay.py``): random operation sequences
  must produce bit-identical roots, items, and proof bytes on both engines;
* the **baseline** of ``benchmarks/bench_trie_hotpath.py``, which records the
  bulk-insert and proof-serving speedups the overlay delivers.

Do not use it in serving paths; it exists to be slow in the same way the
seed was slow.
"""

from __future__ import annotations

from typing import Iterator, Optional, Union

from ..crypto.keccak import keccak256
from ..rlp import codec as rlp
from ..storage.nodestore import NodeStore, as_node_store
from .mpt import EMPTY_TRIE_ROOT, TrieError
from .nibbles import (
    Nibbles,
    bytes_to_nibbles,
    common_prefix_length,
    hp_decode,
    hp_encode,
)

__all__ = ["NaiveMerklePatriciaTrie"]

_BLANK = b""


class NaiveMerklePatriciaTrie:
    """Eager-hashing MPT: persists and re-hashes the path on every write.

    API-compatible with :class:`~repro.trie.mpt.MerklePatriciaTrie` (including
    :meth:`load_node`, so :mod:`repro.trie.proof` can prove against either
    engine), minus the overlay-specific extras.
    """

    def __init__(self, db: Union[None, dict, NodeStore, str] = None,
                 root_hash: bytes = EMPTY_TRIE_ROOT) -> None:
        self._db: NodeStore = as_node_store(db)
        if root_hash != EMPTY_TRIE_ROOT and root_hash not in self._db:
            raise TrieError(f"unknown root hash {root_hash.hex()}")
        self._root_hash = root_hash

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    @property
    def root_hash(self) -> bytes:
        return self._root_hash

    @property
    def db(self) -> NodeStore:
        return self._db

    def commit(self) -> bytes:
        """Eager engine: writes are already staged per-put; flushing the
        store batch (a no-op for the memory backend) is all that remains."""
        self._db.commit(self._root_hash)
        return self._root_hash

    def get(self, key: bytes) -> Optional[bytes]:
        return self._get(self._resolve_root(), bytes_to_nibbles(key))

    def put(self, key: bytes, value: bytes) -> None:
        if not isinstance(value, bytes):
            raise TypeError(f"trie values must be bytes, got {type(value).__name__}")
        if value == b"":
            raise ValueError("empty values are not storable; use delete()")
        node = self._resolve_root()
        new_node = self._put(node, bytes_to_nibbles(key), value)
        self._set_root(new_node)

    def delete(self, key: bytes) -> bool:
        node = self._resolve_root()
        if self._get(node, bytes_to_nibbles(key)) is None:
            return False
        new_node = self._delete(node, bytes_to_nibbles(key))
        self._set_root(new_node)
        return True

    def update(self, items: dict[bytes, bytes]) -> None:
        for key in sorted(items):
            self.put(key, items[key])

    def items(self) -> Iterator[tuple[bytes, bytes]]:
        yield from self._iter(self._resolve_root(), ())

    def snapshot(self) -> bytes:
        return self.commit()

    def at_root(self, root_hash: bytes) -> "NaiveMerklePatriciaTrie":
        return NaiveMerklePatriciaTrie(self._db, root_hash)

    def load_node(self, node_hash: bytes,
                  encoded: Optional[bytes] = None) -> rlp.Item:
        """Uncached decode — the per-request cost the overlay engine removed."""
        if encoded is not None:
            return rlp.decode(encoded)
        return self._load(node_hash)

    def __contains__(self, key: bytes) -> bool:
        return self.get(key) is not None

    def __len__(self) -> int:
        return sum(1 for _ in self.items())

    # ------------------------------------------------------------------ #
    # Node store plumbing
    # ------------------------------------------------------------------ #

    def _resolve_root(self) -> rlp.Item:
        if self._root_hash == EMPTY_TRIE_ROOT:
            return _BLANK
        return self._load(self._root_hash)

    def _set_root(self, node: rlp.Item) -> None:
        if node == _BLANK:
            self._root_hash = EMPTY_TRIE_ROOT
            return
        encoded = rlp.encode(node)
        node_hash = keccak256(encoded)
        self._db[node_hash] = encoded
        self._root_hash = node_hash

    def _load(self, node_hash: bytes) -> rlp.Item:
        encoded = self._db.get(node_hash)
        if encoded is None:
            raise TrieError(f"missing trie node {node_hash.hex()}")
        return rlp.decode(encoded)

    def _resolve(self, ref: rlp.Item) -> rlp.Item:
        if isinstance(ref, bytes):
            if ref == _BLANK:
                return _BLANK
            if len(ref) == 32:
                return self._load(ref)
            raise TrieError(f"invalid node reference of {len(ref)} bytes")
        return ref

    def _store(self, node: rlp.Item) -> rlp.Item:
        if node == _BLANK:
            return _BLANK
        encoded = rlp.encode(node)
        if len(encoded) < 32:
            return node
        node_hash = keccak256(encoded)
        self._db[node_hash] = encoded
        return node_hash

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #

    def _get(self, node: rlp.Item, path: Nibbles) -> Optional[bytes]:
        while True:
            if node == _BLANK:
                return None
            if not isinstance(node, list):
                raise TrieError("corrupt trie node (expected list)")
            if len(node) == 17:  # branch
                if not path:
                    value = node[16]
                    return value if value != _BLANK else None
                node = self._resolve(node[path[0]])
                path = path[1:]
                continue
            node_path, is_leaf = hp_decode(node[0])
            if is_leaf:
                return node[1] if node_path == path else None
            # extension
            if path[: len(node_path)] != node_path:
                return None
            node = self._resolve(node[1])
            path = path[len(node_path):]

    # ------------------------------------------------------------------ #
    # Insertion
    # ------------------------------------------------------------------ #

    def _put(self, node: rlp.Item, path: Nibbles, value: bytes) -> rlp.Item:
        if node == _BLANK:
            return [hp_encode(path, is_leaf=True), value]
        if len(node) == 17:
            return self._put_branch(node, path, value)
        node_path, is_leaf = hp_decode(node[0])
        if is_leaf:
            return self._put_leaf(node, node_path, path, value)
        return self._put_extension(node, node_path, path, value)

    def _put_branch(self, node: list, path: Nibbles, value: bytes) -> rlp.Item:
        new_node = list(node)
        if not path:
            new_node[16] = value
            return new_node
        child = self._resolve(node[path[0]])
        new_node[path[0]] = self._store(self._put(child, path[1:], value))
        return new_node

    def _put_leaf(self, node: list, node_path: Nibbles, path: Nibbles,
                  value: bytes) -> rlp.Item:
        if node_path == path:
            return [node[0], value]
        shared = common_prefix_length(node_path, path)
        branch: list = [_BLANK] * 17
        old_rest = node_path[shared:]
        if old_rest:
            leaf = [hp_encode(old_rest[1:], is_leaf=True), node[1]]
            branch[old_rest[0]] = self._store(leaf)
        else:
            branch[16] = node[1]
        new_rest = path[shared:]
        if new_rest:
            leaf = [hp_encode(new_rest[1:], is_leaf=True), value]
            branch[new_rest[0]] = self._store(leaf)
        else:
            branch[16] = value
        if shared:
            return [hp_encode(path[:shared], is_leaf=False), self._store(branch)]
        return branch

    def _put_extension(self, node: list, node_path: Nibbles, path: Nibbles,
                       value: bytes) -> rlp.Item:
        shared = common_prefix_length(node_path, path)
        if shared == len(node_path):  # descend through the extension
            child = self._resolve(node[1])
            new_child = self._put(child, path[shared:], value)
            return [node[0], self._store(new_child)]
        branch: list = [_BLANK] * 17
        ext_rest = node_path[shared:]
        if len(ext_rest) == 1:
            branch[ext_rest[0]] = node[1]
        else:
            sub_ext = [hp_encode(ext_rest[1:], is_leaf=False), node[1]]
            branch[ext_rest[0]] = self._store(sub_ext)
        new_rest = path[shared:]
        if new_rest:
            leaf = [hp_encode(new_rest[1:], is_leaf=True), value]
            branch[new_rest[0]] = self._store(leaf)
        else:
            branch[16] = value
        if shared:
            return [hp_encode(path[:shared], is_leaf=False), self._store(branch)]
        return branch

    # ------------------------------------------------------------------ #
    # Deletion (with branch collapsing)
    # ------------------------------------------------------------------ #

    def _delete(self, node: rlp.Item, path: Nibbles) -> rlp.Item:
        if node == _BLANK:
            return _BLANK
        if len(node) == 17:
            return self._delete_branch(node, path)
        node_path, is_leaf = hp_decode(node[0])
        if is_leaf:
            return _BLANK if node_path == path else node
        if path[: len(node_path)] != node_path:
            return node
        child = self._resolve(node[1])
        new_child = self._delete(child, path[len(node_path):])
        return self._merge_extension(node_path, new_child)

    def _delete_branch(self, node: list, path: Nibbles) -> rlp.Item:
        new_node = list(node)
        if not path:
            new_node[16] = _BLANK
        else:
            child = self._resolve(node[path[0]])
            new_node[path[0]] = self._store(self._delete(child, path[1:]))
        return self._normalize_branch(new_node)

    def _normalize_branch(self, node: list) -> rlp.Item:
        occupied = [i for i in range(16) if node[i] != _BLANK]
        has_value = node[16] != _BLANK
        if len(occupied) + int(has_value) >= 2:
            return node
        if has_value:  # value only: becomes a leaf with empty path
            return [hp_encode((), is_leaf=True), node[16]]
        if not occupied:  # empty branch: vanishes
            return _BLANK
        index = occupied[0]
        child = self._resolve(node[index])
        return self._merge_extension((index,), child)

    def _merge_extension(self, prefix: Nibbles, child: rlp.Item) -> rlp.Item:
        if child == _BLANK:
            return _BLANK
        if len(child) == 17:
            return [hp_encode(prefix, is_leaf=False), self._store(child)]
        child_path, is_leaf = hp_decode(child[0])
        merged = prefix + child_path
        return [hp_encode(merged, is_leaf=is_leaf), child[1]]

    # ------------------------------------------------------------------ #
    # Iteration
    # ------------------------------------------------------------------ #

    def _iter(self, node: rlp.Item, prefix: Nibbles) -> Iterator[tuple[bytes, bytes]]:
        if node == _BLANK:
            return
        if len(node) == 17:
            if node[16] != _BLANK:
                yield self._nibbles_to_key(prefix), node[16]
            for i in range(16):
                if node[i] != _BLANK:
                    yield from self._iter(self._resolve(node[i]), prefix + (i,))
            return
        node_path, is_leaf = hp_decode(node[0])
        if is_leaf:
            yield self._nibbles_to_key(prefix + node_path), node[1]
        else:
            yield from self._iter(self._resolve(node[1]), prefix + node_path)

    @staticmethod
    def _nibbles_to_key(nibbles: Nibbles) -> bytes:
        if len(nibbles) % 2:
            raise TrieError("odd-length key path in trie")
        return bytes(
            (nibbles[i] << 4) | nibbles[i + 1] for i in range(0, len(nibbles), 2)
        )
