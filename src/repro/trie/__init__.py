"""Merkle Patricia Trie substrate: authenticated storage + Merkle proofs."""

from .mpt import (
    DEFAULT_NODE_CACHE_CAPACITY,
    EMPTY_TRIE_ROOT,
    MerklePatriciaTrie,
    TrieError,
)
from .nibbles import bytes_to_nibbles, hp_decode, hp_encode, nibbles_to_bytes
from .proof import (
    ProofError,
    generate_multiproof,
    generate_proof,
    proof_size,
    verify_multiproof,
    verify_proof,
)
from .reference import NaiveMerklePatriciaTrie

__all__ = [
    "MerklePatriciaTrie",
    "NaiveMerklePatriciaTrie",
    "DEFAULT_NODE_CACHE_CAPACITY",
    "EMPTY_TRIE_ROOT",
    "TrieError",
    "generate_proof",
    "verify_proof",
    "generate_multiproof",
    "verify_multiproof",
    "proof_size",
    "ProofError",
    "bytes_to_nibbles",
    "nibbles_to_bytes",
    "hp_encode",
    "hp_decode",
]
