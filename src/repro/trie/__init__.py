"""Merkle Patricia Trie substrate: authenticated storage + Merkle proofs."""

from .mpt import (
    DEFAULT_NODE_CACHE_CAPACITY,
    EMPTY_TRIE_ROOT,
    MerklePatriciaTrie,
    TrieError,
)
from .nibbles import bytes_to_nibbles, hp_decode, hp_encode, nibbles_to_bytes
from .proof import (
    ProofError,
    generate_multiproof,
    generate_proof,
    proof_size,
    verify_multiproof,
    verify_proof,
)
from .reference import NaiveMerklePatriciaTrie
from .shard import (
    ShardError,
    ShardRange,
    ShardSlice,
    collect_subtree,
    combine_shard_heads,
    extract_shard_nodes,
    shard_commitment,
    shard_head,
    shard_of_key,
)

__all__ = [
    "MerklePatriciaTrie",
    "NaiveMerklePatriciaTrie",
    "ShardError",
    "ShardRange",
    "ShardSlice",
    "shard_of_key",
    "extract_shard_nodes",
    "collect_subtree",
    "shard_head",
    "shard_commitment",
    "combine_shard_heads",
    "DEFAULT_NODE_CACHE_CAPACITY",
    "EMPTY_TRIE_ROOT",
    "TrieError",
    "generate_proof",
    "verify_proof",
    "generate_multiproof",
    "verify_multiproof",
    "proof_size",
    "ProofError",
    "bytes_to_nibbles",
    "nibbles_to_bytes",
    "hp_encode",
    "hp_decode",
]
