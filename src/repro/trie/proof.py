"""Merkle proofs of (non-)inclusion for the Merkle Patricia Trie.

A proof for key ``k`` is the ordered list of RLP-encoded trie nodes on the
path from the root to ``k``'s leaf (or to the point where the path provably
diverges).  A verifier that only knows the 32-byte root — a PARP light client
holding a block header, or the on-chain Fraud Detection Module — can check
the proof without any other state:  each node must hash (keccak256) to the
reference held by its parent, and the first node must hash to the root.

This is exactly the ``π_γ`` field of a PARP response (paper Fig. 3) and the
object whose size Figure 6 sweeps.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ..crypto.keccak import keccak256
from ..rlp import codec as rlp
from .mpt import EMPTY_TRIE_ROOT, MerklePatriciaTrie
from .nibbles import bytes_to_nibbles, hp_decode

__all__ = [
    "ProofError",
    "generate_proof",
    "verify_proof",
    "generate_multiproof",
    "verify_multiproof",
    "proof_size",
]

_BLANK = b""


class ProofError(Exception):
    """Raised when a Merkle proof is malformed or inconsistent with the root."""


def generate_proof(trie: MerklePatriciaTrie, key: bytes) -> list[bytes]:
    """Collect the hash-referenced nodes on the path of ``key``.

    Works for both present keys (inclusion) and absent keys (exclusion: the
    proof shows the path dead-ends).  Inlined sub-32-byte nodes are embedded
    in their parents' encodings and therefore not listed separately.

    Fast path: the proof's node *bytes* come straight from the trie's backing
    store, while traversal runs over the trie's decoded-node cache
    (:meth:`~repro.trie.mpt.MerklePatriciaTrie.load_node`), so serving a hot
    key costs dictionary lookups instead of one ``rlp.decode`` per node per
    request.  A node missing from the store mid-walk is a corrupt-store
    condition and is reported as a :class:`ProofError` carrying the root, the
    key, and the depth at which proving failed.
    """
    proof: list[bytes] = []
    root_hash = trie.root_hash  # commits any pending overlay writes
    if root_hash == EMPTY_TRIE_ROOT:
        return proof
    path = bytes_to_nibbles(key)
    ref: rlp.Item = root_hash
    while True:
        if isinstance(ref, bytes):
            if ref == _BLANK:
                return proof
            encoded = trie.db.get(ref)
            if encoded is None:
                raise ProofError(
                    f"missing trie node {ref.hex()} while proving key "
                    f"{key.hex()} under root {root_hash.hex()} "
                    f"(depth {len(proof)})"
                )
            proof.append(encoded)
            # cached decode; on a miss the bytes just fetched are decoded
            # in place instead of re-reading the store
            node = trie.load_node(ref, encoded)
        else:
            node = ref  # inline node: already part of the parent's encoding
        if len(node) == 17:
            if not path:
                return proof
            ref = node[path[0]]
            path = path[1:]
            continue
        node_path, is_leaf = hp_decode(node[0])
        if is_leaf:
            return proof
        if path[: len(node_path)] != node_path:
            return proof
        ref = node[1]
        path = path[len(node_path):]


def verify_proof(root_hash: bytes, key: bytes, proof: list[bytes]) -> Optional[bytes]:
    """Verify ``proof`` against ``root_hash`` for ``key``.

    Returns the proven value for an inclusion proof, or ``None`` for a valid
    exclusion proof.  Raises :class:`ProofError` when the proof does not
    authenticate against the root — for PARP this is the *fraud* signal of
    the "Verify Merkle Proof" check (§V-D).
    """
    if root_hash == EMPTY_TRIE_ROOT:
        if proof:
            raise ProofError("non-empty proof against the empty trie root")
        return None
    nodes_by_hash = {keccak256(encoded): encoded for encoded in proof}
    return _walk(root_hash, key, nodes_by_hash)


def _walk(root_hash: bytes, key: bytes,
          nodes_by_hash: dict[bytes, bytes]) -> Optional[bytes]:
    """Walk ``key``'s path from ``root_hash`` using only supplied nodes."""
    path = bytes_to_nibbles(key)
    ref: rlp.Item = root_hash
    while True:
        node = _resolve_ref(ref, nodes_by_hash)
        if node is None:  # blank child: key proven absent
            return None
        if len(node) == 17:
            if not path:
                value = node[16]
                return value if value != _BLANK else None
            ref = node[path[0]]
            path = path[1:]
            continue
        if len(node) != 2:
            raise ProofError("malformed trie node in proof")
        node_path, is_leaf = hp_decode(node[0])
        if is_leaf:
            if node_path == path:
                value = node[1]
                if not isinstance(value, bytes):
                    raise ProofError("leaf value is not a byte string")
                return value
            return None  # path diverges at the leaf: exclusion
        if path[: len(node_path)] != node_path:
            return None  # extension mismatch: exclusion
        ref = node[1]
        path = path[len(node_path):]


def generate_multiproof(trie: MerklePatriciaTrie,
                        keys: Iterable[bytes]) -> list[bytes]:
    """One proof for many keys: the union of the per-key path nodes.

    Keys under the same state root share their upper trie levels, so the
    multiproof is (often dramatically) smaller than the concatenation of the
    individual proofs — this is the dedup that shrinks the Fig. 6 proof-size
    metric for batched PARP queries.  Node order is deterministic: first
    appearance along the walks of ``keys`` in the order given.
    """
    proof: list[bytes] = []
    seen: set[bytes] = set()
    for key in keys:
        for encoded in generate_proof(trie, key):
            node_hash = keccak256(encoded)
            if node_hash not in seen:
                seen.add(node_hash)
                proof.append(encoded)
    return proof


def verify_multiproof(root_hash: bytes, keys: Sequence[bytes],
                      proof: Sequence[bytes]) -> dict[bytes, Optional[bytes]]:
    """Verify a multiproof; returns ``{key: value-or-None}`` for every key.

    Each key's path is walked independently against the shared node pool, so
    a valid multiproof answers exactly what the per-key proofs would
    (inclusion value, or ``None`` for a proven absence).  Raises
    :class:`ProofError` when any key's path needs a node the pool does not
    authenticate — a tampered or truncated pool cannot mislead the verifier,
    only fail it.
    """
    if root_hash == EMPTY_TRIE_ROOT:
        if proof:
            raise ProofError("non-empty proof against the empty trie root")
        return {key: None for key in keys}
    nodes_by_hash = {keccak256(encoded): encoded for encoded in proof}
    return {key: _walk(root_hash, key, nodes_by_hash) for key in keys}


def _resolve_ref(ref: rlp.Item, nodes_by_hash: dict[bytes, bytes]) -> Optional[rlp.Item]:
    """Resolve a child reference using only proof-supplied, hash-checked nodes."""
    if isinstance(ref, list):
        return ref  # inline node, authenticated by its parent's hash
    if ref == _BLANK:
        return None
    if len(ref) != 32:
        raise ProofError(f"invalid node reference of {len(ref)} bytes")
    encoded = nodes_by_hash.get(ref)
    if encoded is None:
        raise ProofError(f"proof is missing node {ref.hex()}")
    try:
        node = rlp.decode(encoded)
    except rlp.RLPError as exc:
        raise ProofError(f"undecodable proof node: {exc}") from exc
    if not isinstance(node, list) or len(node) not in (2, 17):
        raise ProofError("malformed trie node in proof")
    return node


def proof_size(proof: list[bytes]) -> int:
    """Total byte size of a proof — the quantity plotted in Figure 6."""
    return sum(len(node) for node in proof)
