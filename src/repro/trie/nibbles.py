"""Nibble paths and hex-prefix (HP) encoding for Merkle Patricia Tries.

Trie keys are sequences of nibbles (4-bit values).  Leaf and extension nodes
store a *compact* encoding of their nibble path that packs two nibbles per
byte and uses the first nibble as a flag carrying (a) whether the node is a
leaf and (b) whether the path length is odd — this is Ethereum's "hex prefix"
encoding from the Yellow Paper, Appendix C.
"""

from __future__ import annotations

__all__ = [
    "bytes_to_nibbles",
    "nibbles_to_bytes",
    "hp_encode",
    "hp_decode",
    "common_prefix_length",
]

Nibbles = tuple[int, ...]


def bytes_to_nibbles(data: bytes) -> Nibbles:
    """Expand a byte string into its nibble sequence (big-endian per byte)."""
    out = []
    for byte in data:
        out.append(byte >> 4)
        out.append(byte & 0x0F)
    return tuple(out)


def nibbles_to_bytes(nibbles: Nibbles) -> bytes:
    """Pack an even-length nibble sequence back into bytes."""
    if len(nibbles) % 2:
        raise ValueError("cannot pack an odd number of nibbles into bytes")
    return bytes(
        (nibbles[i] << 4) | nibbles[i + 1] for i in range(0, len(nibbles), 2)
    )


def hp_encode(nibbles: Nibbles, is_leaf: bool) -> bytes:
    """Hex-prefix encode a nibble path with the leaf/extension flag."""
    flag = 2 if is_leaf else 0
    if len(nibbles) % 2:  # odd: flag nibble + first path nibble share a byte
        prefixed = (flag + 1, nibbles[0]) + tuple(nibbles[1:])
    else:
        prefixed = (flag, 0) + tuple(nibbles)
    return nibbles_to_bytes(prefixed)


def hp_decode(data: bytes) -> tuple[Nibbles, bool]:
    """Decode a hex-prefix path; returns (nibbles, is_leaf)."""
    if not data:
        raise ValueError("empty hex-prefix encoding")
    nibbles = bytes_to_nibbles(data)
    flag = nibbles[0]
    if flag > 3:
        raise ValueError(f"invalid hex-prefix flag nibble {flag}")
    is_leaf = flag >= 2
    if flag % 2:  # odd path length
        return nibbles[1:], is_leaf
    if nibbles[1] != 0:
        raise ValueError("hex-prefix padding nibble must be zero")
    return nibbles[2:], is_leaf


def common_prefix_length(a: Nibbles, b: Nibbles) -> int:
    """Length of the shared prefix of two nibble paths."""
    count = 0
    for x, y in zip(a, b):
        if x != y:
            break
        count += 1
    return count
