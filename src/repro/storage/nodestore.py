"""Node-store abstraction: where committed trie nodes live.

Every Merkle Patricia Trie in the system persists its committed nodes —
``keccak256(rlp(node)) -> rlp(node)`` — through one of these stores instead
of a raw dict.  The store is *content-addressed and append-only*: a key is
the hash of its value, so a key is never rewritten with different bytes and
deletion is unnecessary (historical roots must stay resolvable for proof
serving over past blocks, §IV-A).

Two durability models implement the same interface:

* :class:`MemoryNodeStore` — a dict wrapper, behaviour-identical to the
  seed's plain ``dict[bytes, bytes]``; writes are visible immediately and
  ``commit`` only records the root.
* :class:`~repro.storage.filestore.AppendOnlyFileStore` — a disk log whose
  writes buffer in memory until ``commit`` flushes them as one atomic,
  checksummed batch (crash safety is the whole point; see that module).

The trie calls :meth:`NodeStore.commit` exactly once per overlay flush —
PR 3 made ``MerklePatriciaTrie.commit()`` the single choke point where
encoded nodes reach the store, which is what makes batched durable writes a
storage-layer change rather than a trie rewrite.
"""

from __future__ import annotations

import abc
from typing import Iterator, Optional, Union

from ..crypto.keccak import KECCAK_EMPTY_RLP

__all__ = [
    "NodeStore",
    "MemoryNodeStore",
    "StoreError",
    "PrunedRootError",
    "as_node_store",
]


class StoreError(Exception):
    """Raised on unusable node stores (wrong file format, closed handle)."""


class PrunedRootError(StoreError):
    """A requested root existed once but was pruned by store compaction.

    Distinct from a merely *unknown* root: the store remembers which roots
    it deliberately dropped (the pruned-roots record survives restarts), so
    a serving node can answer "this history is outside my retention window"
    instead of the indistinguishable-from-corruption "unknown root hash".
    """


class NodeStore(abc.ABC):
    """Interface between the tries and their persistence layer.

    The mapping surface (``get``/``__setitem__``/``__contains__``/
    ``__len__``) is deliberately dict-shaped so the trie engines, the proof
    generator, and the existing tests interact with a store exactly as they
    did with the seed's raw dict.
    """

    @abc.abstractmethod
    def get(self, key: bytes) -> Optional[bytes]:
        """The stored value for ``key`` (committed or pending), or None."""

    @abc.abstractmethod
    def __setitem__(self, key: bytes, value: bytes) -> None:
        """Stage ``key -> value``; durable no later than the next commit."""

    @abc.abstractmethod
    def __contains__(self, key: bytes) -> bool:
        ...

    @abc.abstractmethod
    def __len__(self) -> int:
        ...

    @abc.abstractmethod
    def commit(self, root: bytes) -> None:
        """Make every staged write durable, atomically, tagged with ``root``.

        ``root`` is the trie root the batch produces; after a crash the
        store recovers to the *last committed* root, never a torn prefix of
        a batch.  Called by ``MerklePatriciaTrie.commit()`` after the
        overlay flush, so one state transition equals one batch.
        """

    @property
    @abc.abstractmethod
    def last_root(self) -> bytes:
        """The root tagged by the most recent :meth:`commit`.

        This is the re-attachment point after reopening a persistent store
        (``MerklePatriciaTrie(store, store.last_root)``).
        """

    @property
    def pruned_roots(self) -> frozenset:
        """Roots this store deliberately dropped during compaction.

        Empty for stores that never prune (the memory store, an archive
        disk store).  The trie consults this to raise the typed
        :class:`PrunedRootError` instead of a generic unknown-root error.
        """
        return frozenset()

    def close(self) -> None:
        """Release resources; staged-but-uncommitted writes are dropped."""

    def __enter__(self) -> "NodeStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class MemoryNodeStore(NodeStore):
    """Dict-backed store — the seed behaviour behind the store interface.

    Wraps (by reference, not copy) an existing dict when given one, so code
    that shared a raw ``db`` dict across tries keeps sharing it through the
    store.  ``commit`` is a root bookmark: dict writes are already "durable"
    for the lifetime of the process.
    """

    def __init__(self, entries: Optional[dict[bytes, bytes]] = None) -> None:
        self._entries: dict[bytes, bytes] = (
            entries if entries is not None else {}
        )
        self._last_root: bytes = KECCAK_EMPTY_RLP

    def get(self, key: bytes) -> Optional[bytes]:
        return self._entries.get(key)

    def __setitem__(self, key: bytes, value: bytes) -> None:
        self._entries[key] = value

    def __delitem__(self, key: bytes) -> None:
        # Only the memory store supports deletion; it exists for the
        # corrupt-store tests, which knock single nodes out from under a trie.
        del self._entries[key]

    def __contains__(self, key: bytes) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[bytes]:
        return iter(self._entries)

    def commit(self, root: bytes) -> None:
        self._last_root = root

    @property
    def last_root(self) -> bytes:
        return self._last_root

    def __repr__(self) -> str:
        return f"MemoryNodeStore(entries={len(self._entries)})"


def as_node_store(db: Union[None, dict, NodeStore, str, "object"],
                  retention=None) -> NodeStore:
    """Normalize what callers hand the tries into a :class:`NodeStore`.

    Accepts the historical forms — ``None`` (fresh in-memory store) and a
    raw dict (wrapped by reference) — plus a store instance (passed
    through, preserving identity so ``at_root`` views share one store) and
    a filesystem path.  A path that is an existing directory — or that has
    no file extension, i.e. *looks* like a directory — follows the
    ``--state-dir`` convention (``<dir>/nodes.log``, via
    :func:`~repro.storage.open_node_store`), so
    ``StateDB(state_dir, store.last_root)`` reattaches a state a devnet
    wrote (and creating it first with either call lands in the same
    place); a path with an extension (``…/nodes.log``) is opened as the
    log file itself.

    ``retention`` (an archive/last-K spec understood by
    :meth:`~repro.storage.compaction.RetentionPolicy.parse`) is applied to
    disk-backed stores it opens or is handed; stores that cannot prune
    (memory, raw dicts) ignore it — they never compact.
    """
    if db is None:
        return MemoryNodeStore()
    if isinstance(db, NodeStore):
        if retention is not None and hasattr(db, "retention"):
            from .compaction import RetentionPolicy

            db.retention = RetentionPolicy.parse(retention)
        return db
    if isinstance(db, dict):
        return MemoryNodeStore(db)
    if isinstance(db, (str, bytes)) or hasattr(db, "__fspath__"):
        import os

        from .filestore import AppendOnlyFileStore, open_node_store

        path = os.fsdecode(db) if not isinstance(db, str) else db
        if os.path.isdir(path) or not os.path.splitext(path)[1]:
            return open_node_store(path, retention=retention)
        return AppendOnlyFileStore(path, retention=retention)
    raise TypeError(
        f"cannot use {type(db).__name__} as a node store "
        "(expected None, dict, NodeStore, or a path)"
    )
