"""Store compaction and pruning: bound the disk footprint of a long run.

The append-only log design (``filestore.py``) is what makes commits crash
safe, but it also means the file only ever grows: every historical root
stays resolvable forever, including state that no retained block references.
This module closes that ops gap:

* :class:`RetentionPolicy` — the knob.  ``archive`` (the default
  everywhere: keep everything, never compact) or ``last-K`` (keep the
  newest K distinct committed roots resolvable and let everything older
  go).  Policies also carry the auto-compaction trigger thresholds.

* :func:`live_state_nodes` — the reachability walk.  Starting from a state
  root it yields every node of the account trie *and* of every referenced
  account storage trie exactly once (transaction/receipt tries are built
  in throwaway memory stores per block, so they never land in
  ``nodes.log`` and need no walking).

* :func:`compact_node_store` — the pass itself.  It walks the retained
  roots oldest-first (sharing one seen-set, so a node reachable from two
  roots is written once, in the oldest batch that needs it), then asks the
  store to rewrite those batches into a fresh log beside the old one and
  promote it by atomic rename.  A crash at any byte offset therefore
  recovers to either the complete old log or the complete new one — never
  a blend.  Roots dropped by the pass are remembered in the store's
  pruned-roots record so later opens can answer
  :class:`~repro.storage.nodestore.PrunedRootError` instead of a generic
  unknown-root failure.

The chain layer (``Blockchain.compact``) prunes ``blocks.log`` *before*
compacting ``nodes.log``: a crash between the two steps leaves the node
store a superset of what the block log references, which reattach handles
— the reverse order could leave the block log demanding a pruned root.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence, Union

from ..crypto.keccak import KECCAK_EMPTY_RLP
from .nodestore import NodeStore, StoreError

__all__ = [
    "RetentionPolicy",
    "CompactionReport",
    "live_state_nodes",
    "compact_node_store",
]

#: the empty-trie root — a batch tagged with it has no reachable nodes
_EMPTY_ROOT = KECCAK_EMPTY_RLP

RetentionSpec = Union[None, int, str, "RetentionPolicy"]


@dataclass(frozen=True)
class RetentionPolicy:
    """How much committed history a disk store keeps resolvable.

    ``mode="archive"`` (default) never prunes: every committed root stays
    provable forever — the pre-compaction behaviour.  ``mode="last"`` keeps
    the newest ``k`` *distinct* roots; compaction drops everything older.

    ``min_compact_bytes`` / ``compact_growth`` tune the automatic trigger
    used by the chain layer: a pruning chain compacts once the log both
    exceeds ``min_compact_bytes`` and has grown past ``compact_growth``
    times its size after the previous compaction.  Explicit
    ``compact(force=True)`` calls ignore the trigger.
    """

    mode: str = "archive"
    k: int = 0
    #: never auto-compact a log smaller than this (churn on tiny stores
    #: costs more in rename+fsync than it reclaims)
    min_compact_bytes: int = 4 << 20
    #: auto-compact when the log grows past this factor of its
    #: size-after-last-compaction
    compact_growth: float = 2.0

    def __post_init__(self) -> None:
        if self.mode not in ("archive", "last"):
            raise ValueError(
                f"retention mode must be 'archive' or 'last', got {self.mode!r}")
        if self.mode == "last" and self.k < 1:
            raise ValueError("last-K retention needs k >= 1")

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def archive(cls) -> "RetentionPolicy":
        return cls()

    @classmethod
    def last(cls, k: int, **overrides) -> "RetentionPolicy":
        return cls(mode="last", k=k, **overrides)

    @classmethod
    def parse(cls, spec: RetentionSpec) -> "RetentionPolicy":
        """Normalize a CLI/constructor spec into a policy.

        ``None``/``"archive"`` → archive; an ``int`` or a numeric string
        (``"4"``, ``"last:4"``, ``"last-4"``) → last-K.  An existing policy
        passes through unchanged.
        """
        if spec is None:
            return cls.archive()
        if isinstance(spec, cls):
            return spec
        if isinstance(spec, int):
            return cls.last(spec)
        if isinstance(spec, str):
            text = spec.strip().lower()
            if text == "archive":
                return cls.archive()
            for prefix in ("last:", "last-", "last"):
                if text.startswith(prefix):
                    text = text[len(prefix):]
                    break
            if text.isdigit():
                return cls.last(int(text))
        raise ValueError(
            f"cannot parse retention spec {spec!r} "
            "(expected 'archive', an integer K, or 'last:K')"
        )

    # ------------------------------------------------------------------ #
    # behaviour
    # ------------------------------------------------------------------ #

    @property
    def prunes(self) -> bool:
        return self.mode == "last"

    def retained_roots(self, history: Sequence[bytes]) -> list[bytes]:
        """The roots this policy keeps, oldest → newest.

        ``history`` is the store's commit history (may contain repeats
        when a root was re-committed); deduplicated to the *last*
        occurrence so recency is judged by the newest commit of each root.
        """
        ordered: list[bytes] = []
        seen: set[bytes] = set()
        for root in reversed(history):
            if root not in seen:
                seen.add(root)
                ordered.append(root)
        ordered.reverse()
        if not self.prunes:
            return ordered
        return ordered[-self.k:]

    def describe(self) -> str:
        if self.prunes:
            return f"last-{self.k} roots"
        return "archive (keep every root)"


@dataclass(frozen=True)
class CompactionReport:
    """What one compaction pass did, for logs/benches/CLI output."""

    retained_roots: tuple[bytes, ...]
    pruned_roots: tuple[bytes, ...]
    live_nodes: int
    bytes_before: int
    bytes_after: int

    @property
    def bytes_reclaimed(self) -> int:
        return max(0, self.bytes_before - self.bytes_after)

    @property
    def shrink_ratio(self) -> float:
        """Fraction of the log reclaimed (0.0 when nothing shrank)."""
        if self.bytes_before <= 0:
            return 0.0
        return self.bytes_reclaimed / self.bytes_before


def live_state_nodes(store: NodeStore, root: bytes,
                     seen: Optional[set] = None
                     ) -> Iterator[tuple[bytes, bytes]]:
    """Yield ``(hash, raw_rlp)`` for every node reachable from ``root``.

    Walks the account trie and, for every account whose ``storage_root``
    is non-empty, that storage trie too.  ``seen`` deduplicates across
    calls — pass one set when walking several retained roots so shared
    subtrees (the common case: consecutive roots differ in a few paths)
    are yielded exactly once, by the first walk that reaches them.

    Raises :class:`StoreError` if a referenced node is missing — a store
    that cannot resolve its own retained root must not be compacted into a
    log that silently drops the hole.
    """
    # chain/trie imports deferred: storage stays importable on its own
    # (blocklog.py uses the same pattern for block decoding)
    from ..chain.account import Account
    from ..rlp import codec as rlp
    from ..rlp.codec import RLPError
    from ..trie.nibbles import hp_decode

    if seen is None:
        seen = set()
    if root == _EMPTY_ROOT:
        return

    def walk(ref, in_account_trie: bool) -> Iterator[tuple[bytes, bytes]]:
        if isinstance(ref, (bytes, bytearray)):
            if ref == b"":
                return
            ref = bytes(ref)
            if ref in seen:
                return
            raw = store.get(ref)
            if raw is None:
                raise StoreError(
                    f"missing trie node {ref.hex()} while collecting the "
                    "live set — the store cannot resolve a retained root"
                )
            seen.add(ref)
            yield ref, raw
            node = rlp.decode(raw)
        else:
            node = ref  # inlined (< 32-byte) child, already decoded
        if len(node) == 17:
            for i in range(16):
                yield from walk(node[i], in_account_trie)
            if in_account_trie and node[16] != b"":
                yield from storage_of(node[16])
        else:
            path, is_leaf = hp_decode(node[0])
            if is_leaf:
                if in_account_trie:
                    yield from storage_of(node[1])
            else:
                yield from walk(node[1], in_account_trie)

    def storage_of(raw_account) -> Iterator[tuple[bytes, bytes]]:
        try:
            account = Account.decode(bytes(raw_account))
        except RLPError as exc:  # pragma: no cover - state tries hold accounts
            raise StoreError(f"unreadable account record in live set: {exc}")
        if account.storage_root != _EMPTY_ROOT:
            yield from walk(account.storage_root, False)

    if len(root) != 32:
        raise StoreError(f"state roots are 32-byte hashes, got {len(root)}")
    yield from walk(root, True)


def _dedup_keep_last(roots: Iterable[bytes]) -> list[bytes]:
    ordered: list[bytes] = []
    seen: set[bytes] = set()
    for root in reversed(list(roots)):
        if root not in seen:
            seen.add(root)
            ordered.append(root)
    ordered.reverse()
    return ordered


def compact_node_store(store, retention: RetentionSpec = None,
                       *, retain_roots: Optional[Sequence[bytes]] = None
                       ) -> CompactionReport:
    """Rewrite ``store`` down to the nodes reachable from the retained roots.

    ``retain_roots`` (oldest → newest) overrides the policy's selection —
    the chain layer passes the state roots of the blocks it keeps, which
    can differ from "the last K commits" when consecutive blocks share a
    root.  Without it, the roots come from applying ``retention`` (or the
    store's own configured policy) to the store's commit history.

    The heavy lifting — tmp-file write, fsync, atomic rename, index swap —
    happens in :meth:`AppendOnlyFileStore.compact`; this function decides
    *what* survives and materializes each retained batch via
    :func:`live_state_nodes`.
    """
    if not hasattr(store, "compact"):
        raise StoreError(
            f"{type(store).__name__} does not support compaction "
            "(only disk-backed stores have a log to rewrite)"
        )
    history = list(store.root_history)
    if retain_roots is None:
        policy = RetentionPolicy.parse(
            retention if retention is not None
            else getattr(store, "retention", None))
        retain = policy.retained_roots(history)
    else:
        retain = _dedup_keep_last(retain_roots)
        for root in retain:
            if root != _EMPTY_ROOT and root not in store:
                raise StoreError(
                    f"cannot retain unresolvable root {root.hex()}")
    retained_set = set(retain)
    pruned = [root for root in _dedup_keep_last(history)
              if root not in retained_set and root != _EMPTY_ROOT]

    seen: set[bytes] = set()
    batches: list[tuple[bytes, list[tuple[bytes, bytes]]]] = []
    live_nodes = 0
    for root in retain:
        nodes = list(live_state_nodes(store, root, seen))
        live_nodes += len(nodes)
        batches.append((root, nodes))

    bytes_before, bytes_after = store.compact(batches, pruned)
    return CompactionReport(
        retained_roots=tuple(retain),
        pruned_roots=tuple(pruned),
        live_nodes=live_nodes,
        bytes_before=bytes_before,
        bytes_after=bytes_after,
    )
