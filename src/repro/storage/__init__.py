"""Persistent storage backends: trie node stores and the block log.

The tries write committed nodes through a :class:`NodeStore`;
:class:`MemoryNodeStore` keeps the seed's dict behaviour and
:class:`AppendOnlyFileStore` puts the state on disk with crash-safe,
checksummed commit batches.  :class:`BlockLog` is the sibling log that
persists headers/bodies/receipts so a full node can restart at its head.
``as_node_store`` normalizes what callers pass (None / dict / store /
path); ``open_node_store`` / ``open_block_log`` apply the ``--state-dir``
directory convention (``nodes.log`` + ``blocks.log``), and
``open_state_dir`` opens the pair as one unit (refusing a directory that
holds only one of the two logs).

Retention lives here too: :class:`RetentionPolicy` (archive vs last-K),
:func:`compact_node_store` (rewrite the log down to the live node set of
the retained roots, atomically), and :class:`PrunedRootError` (the typed
answer for history a pruning node deliberately dropped).
"""

from .blocklog import (
    BLOCK_LOG_MAGIC,
    BlockLog,
    BlockLogAnchor,
    BlockLogStats,
    open_block_log,
)
from .compaction import (
    CompactionReport,
    RetentionPolicy,
    compact_node_store,
    live_state_nodes,
)
from .filestore import (
    AppendOnlyFileStore,
    FileStoreStats,
    MAGIC,
    open_node_store,
    open_state_dir,
)
from .nodestore import (
    MemoryNodeStore,
    NodeStore,
    PrunedRootError,
    StoreError,
    as_node_store,
)

__all__ = [
    "NodeStore",
    "MemoryNodeStore",
    "AppendOnlyFileStore",
    "FileStoreStats",
    "BlockLog",
    "BlockLogAnchor",
    "BlockLogStats",
    "StoreError",
    "PrunedRootError",
    "RetentionPolicy",
    "CompactionReport",
    "compact_node_store",
    "live_state_nodes",
    "as_node_store",
    "open_node_store",
    "open_block_log",
    "open_state_dir",
    "MAGIC",
    "BLOCK_LOG_MAGIC",
]
