"""Persistent storage backends: trie node stores and the block log.

The tries write committed nodes through a :class:`NodeStore`;
:class:`MemoryNodeStore` keeps the seed's dict behaviour and
:class:`AppendOnlyFileStore` puts the state on disk with crash-safe,
checksummed commit batches.  :class:`BlockLog` is the sibling log that
persists headers/bodies/receipts so a full node can restart at its head.
``as_node_store`` normalizes what callers pass (None / dict / store /
path); ``open_node_store`` / ``open_block_log`` apply the ``--state-dir``
directory convention (``nodes.log`` + ``blocks.log``).
"""

from .blocklog import BLOCK_LOG_MAGIC, BlockLog, BlockLogStats, open_block_log
from .filestore import (
    AppendOnlyFileStore,
    FileStoreStats,
    MAGIC,
    open_node_store,
)
from .nodestore import MemoryNodeStore, NodeStore, StoreError, as_node_store

__all__ = [
    "NodeStore",
    "MemoryNodeStore",
    "AppendOnlyFileStore",
    "FileStoreStats",
    "BlockLog",
    "BlockLogStats",
    "StoreError",
    "as_node_store",
    "open_node_store",
    "open_block_log",
    "MAGIC",
    "BLOCK_LOG_MAGIC",
]
