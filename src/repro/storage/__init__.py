"""Persistent node-store backends for the Merkle Patricia Tries.

The tries write committed nodes through a :class:`NodeStore`;
:class:`MemoryNodeStore` keeps the seed's dict behaviour and
:class:`AppendOnlyFileStore` puts the state on disk with crash-safe,
checksummed commit batches.  ``as_node_store`` normalizes what callers pass
(None / dict / store / path); ``open_node_store`` applies the ``--state-dir``
directory convention.
"""

from .filestore import (
    AppendOnlyFileStore,
    FileStoreStats,
    MAGIC,
    open_node_store,
)
from .nodestore import MemoryNodeStore, NodeStore, StoreError, as_node_store

__all__ = [
    "NodeStore",
    "MemoryNodeStore",
    "AppendOnlyFileStore",
    "FileStoreStats",
    "StoreError",
    "as_node_store",
    "open_node_store",
    "MAGIC",
]
