"""Append-only, crash-safe disk node store.

This is the persistence layer that lets a full node hold state tries far
bigger than RAM-resident Python dicts allow, and survive being restarted:

* **Data layout** — one log file.  An 8-byte magic header, then a sequence
  of *commit batches*.  Each batch is::

      0xB1 | u32 count | count x (32-byte hash | u32 len | value bytes)
           | 32-byte root | u32 crc32

  The CRC covers everything from the marker through the root, so any torn
  or bit-flipped suffix is detected on reopen.

* **Write path** — ``__setitem__`` stages entries in a pending dict (reads
  see them immediately); :meth:`commit` serializes the whole batch into one
  buffer, appends it with a single ``write``, then ``flush`` + ``fsync``.
  The trie's overlay engine calls ``commit`` once per root transition, so
  a block's worth of nodes costs one syscall burst, not one per node.
  Content addressing makes re-puts of known hashes free: they are skipped.

* **Recovery** — :meth:`_recover` (run on open) scans batches from the
  front, verifying each CRC.  The first short read or checksum mismatch
  ends the valid prefix: the file is truncated back to the last batch that
  committed completely, the offset index is rebuilt from the surviving
  prefix, and :attr:`last_root` is the root that batch was tagged with.  A
  crash mid-``write`` therefore loses only the uncommitted batch — exactly
  the overlay writes the trie had not yet promised were durable.

* **Read path** — the in-memory index maps hash -> (offset, length); a
  ``get`` is one locked ``seek`` + ``read``, behind a bounded LRU of
  *encoded* node bytes.  The trie keeps its decoded-node LRU above the
  store, but proof serving also needs the raw RLP bytes of every proof
  node (they *are* the proof), so without the byte cache a warm proof
  still paid one file read per node per request.  Hot nodes therefore
  skip the disk entirely; the file is only touched on double misses.
"""

from __future__ import annotations

import os
import pathlib
import struct
import threading
import zlib
from dataclasses import dataclass
from typing import Optional, Union

from ..crypto.keccak import KECCAK_EMPTY_RLP
from ..metrics.cache import LRUCache
from .nodestore import NodeStore, StoreError

__all__ = ["AppendOnlyFileStore", "FileStoreStats", "open_node_store"]

#: default bound for the encoded-node read cache (entries, not bytes; trie
#: nodes encode to ≤ ~530 B, so the worst case is a few tens of MiB —
#: sized to keep the upper levels of a multi-million-key trie resident)
DEFAULT_READ_CACHE_CAPACITY = 65536

#: file signature: PARP node store, format version 1
MAGIC = b"PARPNS01"
_BATCH_MARKER = b"\xb1"
_U32 = struct.Struct("<I")
_HASH_LEN = 32


@dataclass
class FileStoreStats:
    """Operational counters surfaced to benches and the serving node."""

    batches_committed: int = 0
    entries_written: int = 0
    bytes_appended: int = 0
    reads: int = 0
    #: batches found intact by the recovery scan on the most recent open
    batches_recovered: int = 0
    #: torn/corrupt suffix bytes truncated away on the most recent open
    truncated_bytes: int = 0


class AppendOnlyFileStore(NodeStore):
    """Durable node store over a single append-only log file.

    ``sync=False`` trades the per-commit ``fsync`` for speed (useful for
    bulk loads and benchmarks where a machine crash just means rebuilding);
    the atomicity guarantee — recover to a committed root, never a torn
    batch — holds either way because it comes from the CRC, not the fsync.
    """

    def __init__(self, path: Union[str, os.PathLike],
                 *, sync: bool = True,
                 read_cache_capacity: int = DEFAULT_READ_CACHE_CAPACITY) -> None:
        self._path = pathlib.Path(path)
        self._sync = sync
        self._lock = threading.Lock()
        self._read_cache: LRUCache = LRUCache(capacity=read_cache_capacity)
        self._pending: dict[bytes, bytes] = {}
        self._index: dict[bytes, tuple[int, int]] = {}
        self._last_root: bytes = KECCAK_EMPTY_RLP
        self._closed = False
        #: a failed append that could not be truncated away wedges writes
        #: (reads stay valid); reopening re-runs recovery and clears it
        self._wedged = False
        self.stats = FileStoreStats()
        self._path.parent.mkdir(parents=True, exist_ok=True)
        fresh = not self._path.exists() or self._path.stat().st_size == 0
        self._fh = open(self._path, "a+b")
        if fresh:
            self._fh.write(MAGIC)
            self._fh.flush()
            if self._sync:
                os.fsync(self._fh.fileno())
        else:
            self._recover()

    # ------------------------------------------------------------------ #
    # NodeStore interface
    # ------------------------------------------------------------------ #

    @property
    def path(self) -> pathlib.Path:
        return self._path

    @property
    def last_root(self) -> bytes:
        return self._last_root

    def get(self, key: bytes) -> Optional[bytes]:
        value = self._pending.get(key)
        if value is not None:
            return value
        cached = self._read_cache.get(key)
        if cached is not None:
            return cached
        location = self._index.get(key)
        if location is None:
            return None
        offset, length = location
        with self._lock:
            self._require_open()
            self._fh.seek(offset)
            data = self._fh.read(length)
        if len(data) != length:  # pragma: no cover - index always in-bounds
            raise StoreError(f"short read at offset {offset} in {self._path}")
        self.stats.reads += 1
        self._read_cache.put(key, data)
        return data

    def __setitem__(self, key: bytes, value: bytes) -> None:
        if len(key) != _HASH_LEN:
            raise StoreError(f"node keys are {_HASH_LEN}-byte hashes, "
                             f"got {len(key)}")
        # content-addressed: a known hash is already durable with these bytes
        if key in self._index or key in self._pending:
            return
        self._pending[key] = value

    def __contains__(self, key: bytes) -> bool:
        return key in self._pending or key in self._index

    def __len__(self) -> int:
        return len(self._index) + len(self._pending)

    def commit(self, root: bytes) -> None:
        """Append the pending batch as one checksummed, fsynced record.

        A commit with nothing pending *and* an unchanged root is a no-op.
        A root transition whose nodes all deduplicated away (state
        committed back to a previously-stored shape) still cuts an empty,
        root-tagged batch — :attr:`last_root` must always be the newest
        *acknowledged* commit, or reopening would resurrect the state that
        was committed away.

        The record is *streamed* to the (buffered) file handle with an
        incremental CRC — mirroring the recovery scan — so committing a
        huge batch never builds a second in-memory copy of the nodes.
        Atomicity comes from the checksum, not from a single write: a
        crash mid-stream leaves a torn suffix that recovery truncates.
        """
        if not self._pending and root == self._last_root:
            return
        with self._lock:
            self._require_open()
            if self._wedged:
                raise StoreError(
                    f"node store {self._path} refused the commit: a failed "
                    "append could not be truncated away, so further writes "
                    "would be discarded by crash recovery"
                )
            self._fh.seek(0, os.SEEK_END)
            base = self._fh.tell()
            try:
                written, locations = self._write_batch(root, base)
            except Exception:
                # drop the partial record so later commits do not bury a
                # torn batch mid-log (recovery scans front-to-back and
                # would discard everything after it); if even that fails,
                # wedge the store — appending past a torn record would
                # acknowledge commits that recovery must throw away
                try:
                    self._fh.truncate(base)
                    self._fh.flush()
                except OSError:
                    self._wedged = True
                raise
            for key, offset, length in locations:
                self._index[key] = (offset, length)
            self.stats.batches_committed += 1
            self.stats.entries_written += len(self._pending)
            self.stats.bytes_appended += written
            # seed the read cache with the batch just written: the next
            # proofs served will walk these nodes, and they are already in
            # memory.  A bulk batch larger than the cache would only churn
            # it (evicting the genuinely hot entries for an arbitrary
            # tail), so seeding is skipped then.
            if len(self._pending) <= self._read_cache.capacity:
                for key, value in self._pending.items():
                    self._read_cache.put(key, value)
            self._pending.clear()
            self._last_root = root

    def _write_batch(self, root: bytes, base: int
                     ) -> tuple[int, list[tuple[bytes, int, int]]]:
        """Stream one batch at ``base``; returns (bytes written, locations).

        The value locations are returned — not applied to the index — so a
        failed write cannot leave the index pointing into a torn record.
        """
        fh = self._fh
        header = _BATCH_MARKER + _U32.pack(len(self._pending))
        crc = zlib.crc32(header)
        fh.write(header)
        offset = base + len(header)
        locations: list[tuple[bytes, int, int]] = []
        for key, value in self._pending.items():
            entry_header = key + _U32.pack(len(value))
            crc = zlib.crc32(entry_header, crc)
            fh.write(entry_header)
            offset += len(entry_header)
            crc = zlib.crc32(value, crc)
            fh.write(value)
            locations.append((key, offset, len(value)))
            offset += len(value)
        crc = zlib.crc32(root, crc)
        fh.write(root)
        fh.write(_U32.pack(crc))
        offset += _HASH_LEN + _U32.size
        fh.flush()
        if self._sync:
            os.fsync(fh.fileno())
        return offset - base, locations

    def close(self) -> None:
        """Close the file handle; pending (uncommitted) writes are dropped —
        they were never promised durable, exactly like trie overlay nodes
        before a ``commit``."""
        if not self._closed:
            self._closed = True
            self._pending.clear()
            self._read_cache.clear()
            self._fh.close()

    # ------------------------------------------------------------------ #
    # Recovery
    # ------------------------------------------------------------------ #

    def _require_open(self) -> None:
        if self._closed:
            raise StoreError(f"node store {self._path} is closed")

    def _recover(self) -> None:
        """Rebuild the index from the longest valid prefix; truncate the rest.

        Validity is per-batch: marker present, all fields complete, CRC
        matches.  The scan is strictly front-to-back, so a corrupt byte in
        batch *k* invalidates batches *k..n* — later batches may reference
        nodes from the damaged one, so the committed root they advertise is
        not resolvable and keeping them would serve broken proofs.

        The scan *streams*: batches are parsed straight off the file handle
        with an incremental CRC, so recovering a log far bigger than RAM
        costs O(one node) of memory for values plus the offset index — the
        whole point of the disk backend is state that does not fit in
        memory, and that must include the restart path.
        """
        total = os.fstat(self._fh.fileno()).st_size
        self._fh.seek(0)
        magic = self._fh.read(len(MAGIC))
        if len(magic) < len(MAGIC) and MAGIC.startswith(magic):
            # a crash while creating the fresh log tore the header itself:
            # nothing was ever committed, so re-initialize instead of
            # refusing to open forever
            self.stats.truncated_bytes = len(magic)
            self._fh.truncate(0)
            self._fh.write(MAGIC)
            self._fh.flush()
            if self._sync:
                os.fsync(self._fh.fileno())
            return
        if magic != MAGIC:
            raise StoreError(
                f"{self._path} is not a PARP node store (bad magic {magic!r})"
            )
        index: dict[bytes, tuple[int, int]] = {}
        last_root = KECCAK_EMPTY_RLP
        good_end = len(MAGIC)
        offset = len(MAGIC)
        batches = 0
        while offset < total:
            parsed = self._scan_batch(offset, total)
            if parsed is None:
                break  # torn or corrupt suffix: stop at the last good batch
            entries, root, offset = parsed
            index.update(entries)
            last_root = root
            good_end = offset
            batches += 1
        if good_end < total:
            self.stats.truncated_bytes = total - good_end
            self._fh.truncate(good_end)
            self._fh.flush()
            if self._sync:
                os.fsync(self._fh.fileno())
        self._index = index
        self._last_root = last_root
        self.stats.batches_recovered = batches

    def _scan_batch(self, offset: int, total: int
                    ) -> Optional[tuple[dict[bytes, tuple[int, int]],
                                        bytes, int]]:
        """Stream-parse one batch at ``offset``: (entries, root, next offset).

        Returns None on any short read, bad marker, or CRC mismatch.  The
        CRC is fed incrementally, so only one value is resident at a time.
        """
        fh = self._fh
        fh.seek(offset)
        header = fh.read(1 + _U32.size)
        if len(header) != 1 + _U32.size or header[:1] != _BATCH_MARKER:
            return None
        crc = zlib.crc32(header)
        (count,) = _U32.unpack_from(header, 1)
        pos = offset + 1 + _U32.size
        entries: dict[bytes, tuple[int, int]] = {}
        for _ in range(count):
            entry_header = fh.read(_HASH_LEN + _U32.size)
            if len(entry_header) != _HASH_LEN + _U32.size:
                return None
            crc = zlib.crc32(entry_header, crc)
            key = entry_header[:_HASH_LEN]
            (length,) = _U32.unpack_from(entry_header, _HASH_LEN)
            pos += _HASH_LEN + _U32.size
            if pos + length > total:
                return None
            value = fh.read(length)
            if len(value) != length:
                return None
            crc = zlib.crc32(value, crc)
            entries[key] = (pos, length)
            pos += length
        trailer = fh.read(_HASH_LEN + _U32.size)
        if len(trailer) != _HASH_LEN + _U32.size:
            return None
        root = trailer[:_HASH_LEN]
        crc = zlib.crc32(root, crc)
        (stored_crc,) = _U32.unpack_from(trailer, _HASH_LEN)
        if crc != stored_crc:
            return None
        return entries, root, pos + _HASH_LEN + _U32.size

    def __repr__(self) -> str:
        return (f"AppendOnlyFileStore({str(self._path)!r}, "
                f"entries={len(self._index)}, pending={len(self._pending)})")


def open_node_store(state_dir: Union[str, os.PathLike],
                    *, sync: bool = True) -> AppendOnlyFileStore:
    """Open (or create) the node store of a node's ``--state-dir``.

    The directory convention keeps room for future siblings (block index,
    receipts) next to the trie-node log.
    """
    state_dir = pathlib.Path(state_dir)
    if state_dir.exists() and not state_dir.is_dir():
        raise StoreError(
            f"{state_dir} exists but is not a directory — it looks like a "
            "bare node-store log; open it with AppendOnlyFileStore(path) "
            "or move it to <dir>/nodes.log"
        )
    state_dir.mkdir(parents=True, exist_ok=True)
    return AppendOnlyFileStore(state_dir / "nodes.log", sync=sync)
