"""Append-only, crash-safe disk node store.

This is the persistence layer that lets a full node hold state tries far
bigger than RAM-resident Python dicts allow, and survive being restarted:

* **Data layout** — one log file.  An 8-byte magic header, then (on a
  compacted store) one *pruned-roots record*::

      0xB5 | u32 count | count x 32-byte root | u32 crc32

  then a sequence of *commit batches*.  Each batch is::

      0xB1 | u32 count | count x (32-byte hash | u32 len | value bytes)
           | 32-byte root | u32 crc32

  The CRC covers everything from the marker through the root, so any torn
  or bit-flipped suffix is detected on reopen.  A *clean* close appends a
  root-index footer (stripped again on open — see below)::

      0xB3 | u32 n_roots | n_roots x (32-byte root | u64 batch offset)
           | u32 n_nodes | n_nodes x (32-byte hash | u64 offset | u32 len)
           | u32 crc32 | u64 footer start offset

  The node table is sorted by hash, so an indexed open does not
  deserialize it at all: lookups bisect the packed bytes in place
  (:class:`_PackedNodeIndex`) and the table only hydrates into a dict on
  the first post-open commit.  Reopen cost is therefore one read and one
  CRC — flat in the number of nodes.

* **Write path** — ``__setitem__`` stages entries in a pending dict (reads
  see them immediately); :meth:`commit` serializes the whole batch into one
  buffer, appends it with a single ``write``, then ``flush`` + ``fsync``.
  The trie's overlay engine calls ``commit`` once per root transition, so
  a block's worth of nodes costs one syscall burst, not one per node.
  Content addressing makes re-puts of known hashes free: they are skipped.

* **Recovery** — :meth:`_recover` (run on open) first tries the footer: if
  the last 8 bytes point at an intact ``0xB3`` record, the index and root
  history are deserialized in one read instead of scanning the whole file,
  and the footer is truncated off so the live file is a pure batch log
  again (appends and later recoveries never see it mid-file).  When the
  footer is missing or torn — the normal state after a crash — the scan
  fallback walks batches from the front, verifying each CRC.  The first
  short read or checksum mismatch ends the valid prefix: the file is
  truncated back to the last batch that committed completely, the offset
  index is rebuilt from the surviving prefix, and :attr:`last_root` is the
  root that batch was tagged with.  A crash mid-``write`` therefore loses
  only the uncommitted batch — exactly the overlay writes the trie had not
  yet promised were durable.

* **Read path** — the in-memory index maps hash -> (offset, length); a
  ``get`` is one locked ``seek`` + ``read``, behind a bounded LRU of
  *encoded* node bytes.  The trie keeps its decoded-node LRU above the
  store, but proof serving also needs the raw RLP bytes of every proof
  node (they *are* the proof), so without the byte cache a warm proof
  still paid one file read per node per request.  Hot nodes therefore
  skip the disk entirely; the file is only touched on double misses.
  Any path that retreats the log — a truncated failed append, recovery,
  compaction — discards the affected cache entries: the cache never
  serves bytes the log no longer durably holds.

* **Compaction** — :meth:`compact` rewrites the log to a caller-supplied
  set of batches (the live node set of the retained roots, assembled by
  :func:`~repro.storage.compaction.compact_node_store`).  The new log is
  written beside the old one (``nodes.log.compact``), fsynced, and
  promoted with ``os.replace`` + a directory fsync — a crash at any byte
  offset recovers to either the complete old log or the complete new one.
  Roots dropped by the pass land in the pruned-roots record so reopen can
  answer :class:`~repro.storage.nodestore.PrunedRootError` for them.
"""

from __future__ import annotations

import os
import pathlib
import struct
import threading
import zlib
from collections.abc import MutableMapping
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence, Union

from ..crypto.keccak import KECCAK_EMPTY_RLP
from ..metrics.cache import LRUCache
from .compaction import RetentionPolicy, RetentionSpec
from .nodestore import NodeStore, StoreError

__all__ = [
    "AppendOnlyFileStore",
    "FileStoreStats",
    "open_node_store",
    "open_state_dir",
]

#: default bound for the encoded-node read cache (entries, not bytes; trie
#: nodes encode to ≤ ~530 B, so the worst case is a few tens of MiB —
#: sized to keep the upper levels of a multi-million-key trie resident)
DEFAULT_READ_CACHE_CAPACITY = 65536

#: file signature: PARP node store, format version 1
MAGIC = b"PARPNS01"
_BATCH_MARKER = b"\xb1"
_FOOTER_MARKER = b"\xb3"
_PRUNED_MARKER = b"\xb5"
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
#: footer table entries: (root, batch offset) / (hash, offset, length)
_ROOT_ENTRY = struct.Struct("<32sQ")
_NODE_ENTRY = struct.Struct("<32sQI")
_HASH_LEN = 32
#: bound on remembered pruned roots (newest kept) — the record is loaded
#: on every open, so it must not itself grow without bound
_PRUNED_CAP = 4096


@dataclass
class FileStoreStats:
    """Operational counters surfaced to benches and the serving node.

    **Every counter is per-open**: a fresh :class:`AppendOnlyFileStore`
    starts all of them at zero, whether the log it opens is empty or
    holds years of history.  ``bytes_appended`` therefore counts what
    *this handle* wrote, while ``batches_recovered`` counts what this
    handle *found* at open — the two never mix, and reopening the same
    path yields a store whose counters describe only the new lifecycle.
    """

    batches_committed: int = 0
    entries_written: int = 0
    #: bytes this handle appended via :meth:`commit` (recovered history
    #: and the close-time footer are not appends)
    bytes_appended: int = 0
    reads: int = 0
    #: batches restored at open — by the footer when intact, else by the
    #: recovery scan
    batches_recovered: int = 0
    #: torn/corrupt bytes truncated away during this open's lifetime: the
    #: recovery scan's discarded suffix plus any failed append that had to
    #: be cut back (the footer stripped on a clean open is *not* counted —
    #: nothing durable was lost)
    truncated_bytes: int = 0
    #: compaction passes completed by this handle
    compactions: int = 0
    #: log bytes reclaimed by those passes
    bytes_reclaimed: int = 0


class _PackedNodeIndex(MutableMapping):
    """The footer's node table used as the index, without deserializing it.

    Materializing a dict from a few hundred thousand packed ``(hash,
    offset, length)`` entries is the dominant cost of an indexed reopen —
    a per-entry Python loop that makes the footer barely faster than the
    recovery scan it exists to avoid.  So the table is kept exactly as the
    footer stored it: packed, **sorted by hash**, bisected in place for
    point lookups (the read path's only need).  The first *mutation* — a
    commit after reopen — hydrates it into a real dict; until then the
    index costs one blob reference, and reopen time is flat in the number
    of nodes.

    A clean close can hand the unhydrated blob straight back to the next
    footer (:meth:`packed`), so open→serve→close cycles never pay the
    pack/sort either.
    """

    __slots__ = ("_blob", "_count", "_dict")

    def __init__(self, blob: bytes, count: int) -> None:
        self._blob = blob
        self._count = count
        self._dict: Optional[dict[bytes, tuple[int, int]]] = None

    def _hydrate(self) -> dict[bytes, tuple[int, int]]:
        if self._dict is None:
            self._dict = {
                key: (offset, length)
                for key, offset, length in _NODE_ENTRY.iter_unpack(self._blob)
            }
            self._blob = b""
        return self._dict

    def packed(self) -> Optional[bytes]:
        """The sorted table bytes, if still pristine (else None)."""
        return None if self._dict is not None else self._blob

    def __getitem__(self, key: bytes) -> tuple[int, int]:
        if self._dict is not None:
            return self._dict[key]
        size = _NODE_ENTRY.size
        blob, lo, hi = self._blob, 0, self._count
        while lo < hi:
            mid = (lo + hi) // 2
            probe = blob[mid * size:mid * size + _HASH_LEN]
            if probe < key:
                lo = mid + 1
            elif probe > key:
                hi = mid
            else:
                _, offset, length = _NODE_ENTRY.unpack_from(blob, mid * size)
                return offset, length
        raise KeyError(key)

    def __setitem__(self, key: bytes, value: tuple[int, int]) -> None:
        self._hydrate()[key] = value

    def __delitem__(self, key: bytes) -> None:
        del self._hydrate()[key]

    def __iter__(self) -> Iterator[bytes]:
        if self._dict is not None:
            yield from self._dict
            return
        size = _NODE_ENTRY.size
        for i in range(self._count):
            yield self._blob[i * size:i * size + _HASH_LEN]

    def __len__(self) -> int:
        return self._count if self._dict is None else len(self._dict)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (dict, MutableMapping)):
            return dict(self) == dict(other)
        return NotImplemented


class AppendOnlyFileStore(NodeStore):
    """Durable node store over a single append-only log file.

    ``sync=False`` trades the per-commit ``fsync`` for speed (useful for
    bulk loads and benchmarks where a machine crash just means rebuilding);
    the atomicity guarantee — recover to a committed root, never a torn
    batch — holds either way because it comes from the CRC, not the fsync.

    ``retention`` is this store's :class:`RetentionPolicy` (or a spec
    understood by :meth:`RetentionPolicy.parse`).  The store never prunes
    on its own — compaction runs only when
    :func:`~repro.storage.compaction.compact_node_store` (or the chain
    layer above) asks — but the policy rides with the store so every layer
    agrees on what "compact" means for it.
    """

    def __init__(self, path: Union[str, os.PathLike],
                 *, sync: bool = True,
                 retention: RetentionSpec = None,
                 read_cache_capacity: int = DEFAULT_READ_CACHE_CAPACITY) -> None:
        self._path = pathlib.Path(path)
        self._sync = sync
        self.retention = RetentionPolicy.parse(retention)
        self._lock = threading.Lock()
        self._read_cache: LRUCache = LRUCache(capacity=read_cache_capacity)
        self._pending: dict[bytes, bytes] = {}
        #: hash -> (offset, length); a plain dict after a scan/commit, or
        #: the footer's packed sorted table (:class:`_PackedNodeIndex`)
        #: after an indexed open with no mutations yet
        self._index: MutableMapping = {}
        #: (root, batch offset) per committed batch, oldest → newest —
        #: rebuilt at open (footer or scan), the input to retention
        self._root_history: list[tuple[bytes, int]] = []
        self._pruned_set: set[bytes] = set()
        #: ordered (oldest → newest) view of the pruned set, persisted
        self._pruned_order: list[bytes] = []
        self._last_root: bytes = KECCAK_EMPTY_RLP
        self._data_start = len(MAGIC)
        self._closed = False
        #: True when this open deserialized the footer instead of scanning
        self.opened_indexed = False
        #: a failed append that could not be truncated away wedges writes
        #: (reads stay valid); reopening re-runs recovery and clears it
        self._wedged = False
        self.stats = FileStoreStats()
        self._path.parent.mkdir(parents=True, exist_ok=True)
        # a crash mid-compaction (before the rename) leaves the half-built
        # replacement behind; it was never promoted, so it is garbage
        self._tmp_path().unlink(missing_ok=True)
        fresh = not self._path.exists() or self._path.stat().st_size == 0
        self._fh = open(self._path, "a+b")
        if fresh:
            self._fh.write(MAGIC)
            self._fh.flush()
            if self._sync:
                os.fsync(self._fh.fileno())
        else:
            self._recover()

    # ------------------------------------------------------------------ #
    # NodeStore interface
    # ------------------------------------------------------------------ #

    @property
    def path(self) -> pathlib.Path:
        return self._path

    @property
    def last_root(self) -> bytes:
        return self._last_root

    @property
    def root_history(self) -> list[bytes]:
        """Roots of every live batch, oldest → newest (repeats possible)."""
        return [root for root, _ in self._root_history]

    @property
    def pruned_roots(self) -> frozenset:
        return frozenset(self._pruned_set)

    def get(self, key: bytes) -> Optional[bytes]:
        value = self._pending.get(key)
        if value is not None:
            return value
        cached = self._read_cache.get(key)
        if cached is not None:
            return cached
        # the index lookup happens under the lock: compaction swaps the
        # file and the index together, and a location resolved against the
        # old file must never be read from the new one
        with self._lock:
            self._require_open()
            location = self._index.get(key)
            if location is None:
                return None
            offset, length = location
            self._fh.seek(offset)
            data = self._fh.read(length)
        if len(data) != length:  # pragma: no cover - index always in-bounds
            raise StoreError(f"short read at offset {offset} in {self._path}")
        self.stats.reads += 1
        self._read_cache.put(key, data)
        return data

    def __setitem__(self, key: bytes, value: bytes) -> None:
        if len(key) != _HASH_LEN:
            raise StoreError(f"node keys are {_HASH_LEN}-byte hashes, "
                             f"got {len(key)}")
        # content-addressed: a known hash is already durable with these bytes
        if key in self._index or key in self._pending:
            return
        self._pending[key] = value

    def __contains__(self, key: bytes) -> bool:
        return key in self._pending or key in self._index

    def __len__(self) -> int:
        return len(self._index) + len(self._pending)

    def log_bytes(self) -> int:
        """Current size of the log file — the auto-compaction trigger input."""
        with self._lock:
            self._require_open()
            return os.fstat(self._fh.fileno()).st_size

    def commit(self, root: bytes) -> None:
        """Append the pending batch as one checksummed, fsynced record.

        A commit with nothing pending *and* an unchanged root is a no-op.
        A root transition whose nodes all deduplicated away (state
        committed back to a previously-stored shape) still cuts an empty,
        root-tagged batch — :attr:`last_root` must always be the newest
        *acknowledged* commit, or reopening would resurrect the state that
        was committed away.

        The record is *streamed* to the (buffered) file handle with an
        incremental CRC — mirroring the recovery scan — so committing a
        huge batch never builds a second in-memory copy of the nodes.
        Atomicity comes from the checksum, not from a single write: a
        crash mid-stream leaves a torn suffix that recovery truncates.
        """
        if not self._pending and root == self._last_root:
            return
        with self._lock:
            self._require_open()
            if self._wedged:
                raise StoreError(
                    f"node store {self._path} refused the commit: a failed "
                    "append could not be truncated away, so further writes "
                    "would be discarded by crash recovery"
                )
            self._fh.seek(0, os.SEEK_END)
            base = self._fh.tell()
            try:
                written, locations = self._stream_batch(
                    self._fh, root, base, self._pending.items(),
                    sync=self._sync)
            except Exception:
                # drop the partial record so later commits do not bury a
                # torn batch mid-log (recovery scans front-to-back and
                # would discard everything after it); if even that fails,
                # wedge the store — appending past a torn record would
                # acknowledge commits that recovery must throw away
                try:
                    torn = os.fstat(self._fh.fileno()).st_size - base
                    self._fh.truncate(base)
                    self._fh.flush()
                    if torn > 0:
                        self.stats.truncated_bytes += torn
                except OSError:
                    self._wedged = True
                # either way the staged bytes are not durable: make sure
                # the read cache cannot serve them as if they were
                for key in self._pending:
                    self._read_cache.discard(key)
                raise
            for key, offset, length in locations:
                self._index[key] = (offset, length)
            self._root_history.append((root, base))
            self.stats.batches_committed += 1
            self.stats.entries_written += len(self._pending)
            self.stats.bytes_appended += written
            # seed the read cache with the batch just written: the next
            # proofs served will walk these nodes, and they are already in
            # memory.  A bulk batch larger than the cache would only churn
            # it (evicting the genuinely hot entries for an arbitrary
            # tail), so seeding is skipped then.
            if len(self._pending) <= self._read_cache.capacity:
                for key, value in self._pending.items():
                    self._read_cache.put(key, value)
            self._pending.clear()
            self._last_root = root

    def _stream_batch(self, fh, root: bytes, base: int,
                      items: Iterable[tuple[bytes, bytes]],
                      *, sync: bool) -> tuple[int, list[tuple[bytes, int, int]]]:
        """Stream one batch at ``base`` of ``fh``; returns (written, locations).

        The value locations are returned — not applied to the index — so a
        failed write cannot leave the index pointing into a torn record.
        ``items`` must support ``len()`` (the count leads the record).
        """
        items = items if hasattr(items, "__len__") else list(items)
        header = _BATCH_MARKER + _U32.pack(len(items))
        crc = zlib.crc32(header)
        fh.write(header)
        offset = base + len(header)
        locations: list[tuple[bytes, int, int]] = []
        for key, value in items:
            entry_header = key + _U32.pack(len(value))
            crc = zlib.crc32(entry_header, crc)
            fh.write(entry_header)
            offset += len(entry_header)
            crc = zlib.crc32(value, crc)
            fh.write(value)
            locations.append((key, offset, len(value)))
            offset += len(value)
        crc = zlib.crc32(root, crc)
        fh.write(root)
        fh.write(_U32.pack(crc))
        offset += _HASH_LEN + _U32.size
        fh.flush()
        if sync:
            os.fsync(fh.fileno())
        return offset - base, locations

    def close(self, write_index: bool = True) -> None:
        """Close the file handle; pending (uncommitted) writes are dropped —
        they were never promised durable, exactly like trie overlay nodes
        before a ``commit``.

        A clean close appends the root-index footer so the next open seeks
        instead of scanning.  ``write_index=False`` skips it (tests that
        surgically corrupt the raw batch log want the file footer-free); a
        wedged store never writes one — its tail is exactly what recovery
        must re-examine.
        """
        if self._closed:
            return
        self._closed = True
        self._pending.clear()
        try:
            if write_index and not self._wedged:
                self._write_footer()
        finally:
            self._read_cache.clear()
            self._fh.close()

    # ------------------------------------------------------------------ #
    # Compaction
    # ------------------------------------------------------------------ #

    def _tmp_path(self) -> pathlib.Path:
        return self._path.with_name(self._path.name + ".compact")

    def compact(self, batches: Sequence[tuple[bytes, Sequence[tuple[bytes, bytes]]]],
                pruned_roots: Sequence[bytes] = ()) -> tuple[int, int]:
        """Rewrite the log to exactly ``batches``; returns (before, after) sizes.

        ``batches`` is ordered oldest → newest: one ``(root, [(hash,
        bytes), …])`` per retained root (use
        :func:`~repro.storage.compaction.compact_node_store` to assemble
        it from a retention policy — this method only performs the
        mechanical rewrite).  ``pruned_roots`` joins the store's persisted
        pruned-roots record (newest :data:`_PRUNED_CAP` kept).

        Crash safety: the replacement log is fully written and fsynced at
        ``<path>.compact`` before a single ``os.replace`` promotes it, and
        the directory entry is fsynced after — at every byte offset of the
        pass the on-disk state is either the complete old log or the
        complete new one.  Refuses to run over staged-but-uncommitted
        writes (they exist in no log) or a wedged store.
        """
        with self._lock:
            self._require_open()
            if self._wedged:
                raise StoreError(
                    f"node store {self._path} is wedged; reopen it before "
                    "compacting")
            if self._pending:
                raise StoreError(
                    f"node store {self._path} has {len(self._pending)} "
                    "staged uncommitted writes; commit or drop them before "
                    "compacting")
            before = os.fstat(self._fh.fileno()).st_size
            # pruned memory: previously pruned roots stay remembered (they
            # are still unresolvable), newly pruned append after them
            merged: list[bytes] = []
            merged_seen: set[bytes] = set()
            for root in list(self._pruned_order) + list(pruned_roots):
                if root not in merged_seen:
                    merged_seen.add(root)
                    merged.append(root)
            merged = merged[-_PRUNED_CAP:]
            tmp = self._tmp_path()
            new_index: dict[bytes, tuple[int, int]] = {}
            new_history: list[tuple[bytes, int]] = []
            try:
                with open(tmp, "wb") as out:
                    out.write(MAGIC)
                    if merged:
                        record = (_PRUNED_MARKER + _U32.pack(len(merged))
                                  + b"".join(merged))
                        out.write(record)
                        out.write(_U32.pack(zlib.crc32(record)))
                    data_start = out.tell()
                    offset = data_start
                    for root, items in batches:
                        written, locations = self._stream_batch(
                            out, root, offset, items, sync=False)
                        for key, off, length in locations:
                            new_index[key] = (off, length)
                        new_history.append((root, offset))
                        offset += written
                    out.flush()
                    os.fsync(out.fileno())
            except Exception:
                tmp.unlink(missing_ok=True)
                raise
            os.replace(tmp, self._path)
            self._fsync_dir()
            old_fh = self._fh
            self._fh = open(self._path, "a+b")
            old_fh.close()
            # the cache must not serve nodes the new log no longer holds
            for key in self._index.keys() - new_index.keys():
                self._read_cache.discard(key)
            self._index = new_index
            self._root_history = new_history
            self._last_root = (new_history[-1][0] if new_history
                               else KECCAK_EMPTY_RLP)
            self._pruned_order = merged
            self._pruned_set = set(merged)
            self._data_start = data_start
            after = os.fstat(self._fh.fileno()).st_size
            self.stats.compactions += 1
            self.stats.bytes_reclaimed += max(0, before - after)
            return before, after

    def _fsync_dir(self) -> None:
        if not self._sync:
            return
        try:
            dir_fd = os.open(self._path.parent, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform-dependent
            return
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)

    # ------------------------------------------------------------------ #
    # Root-index footer
    # ------------------------------------------------------------------ #

    def _write_footer(self) -> None:
        """Append the ``0xB3`` footer: root table + node index + crc + pointer.

        Best-effort durability (flushed, fsynced under ``sync=True``): a
        footer torn by a crash during close is detected by its CRC on the
        next open, which then falls back to the streaming scan.
        """
        fh = self._fh
        fh.seek(0, os.SEEK_END)
        start = fh.tell()
        body = bytearray()
        body += _FOOTER_MARKER
        body += _U32.pack(len(self._root_history))
        for root, batch_offset in self._root_history:
            body += _ROOT_ENTRY.pack(root, batch_offset)
        body += _U32.pack(len(self._index))
        packed = (self._index.packed()
                  if isinstance(self._index, _PackedNodeIndex) else None)
        if packed is not None:
            # open→serve→close cycle with no commits: the table this open
            # bisected is still pristine and already sorted — reuse it
            body += packed
        else:
            # sorted by hash: the next open bisects the table in place
            for key in sorted(self._index):
                offset, length = self._index[key]
                body += _NODE_ENTRY.pack(key, offset, length)
        fh.write(body)
        fh.write(_U32.pack(zlib.crc32(bytes(body))))
        fh.write(_U64.pack(start))
        fh.flush()
        if self._sync:
            os.fsync(fh.fileno())

    def _try_indexed_open(self, data_start: int, total: int) -> bool:
        """Deserialize the footer if intact; strips it and returns True.

        Any structural defect — short file, out-of-range pointer, wrong
        marker, CRC mismatch, tables that do not tile the record, offsets
        escaping the batch region — returns False and leaves the file
        untouched for the scan fallback.
        """
        min_footer = 1 + 2 * _U32.size + _U32.size + _U64.size
        if total - data_start < min_footer:
            return False
        fh = self._fh
        fh.seek(total - _U64.size)
        (start,) = _U64.unpack(fh.read(_U64.size))
        if not data_start <= start <= total - min_footer:
            return False
        fh.seek(start)
        blob = fh.read(total - _U64.size - start)
        if len(blob) < min_footer - _U64.size or blob[:1] != _FOOTER_MARKER:
            return False
        body, stored = blob[:-_U32.size], blob[-_U32.size:]
        if zlib.crc32(body) != _U32.unpack(stored)[0]:
            return False
        pos = 1
        (n_roots,) = _U32.unpack_from(body, pos)
        pos += _U32.size
        roots_len = n_roots * _ROOT_ENTRY.size
        if pos + roots_len + _U32.size > len(body):
            return False
        history = [(root, batch_offset) for root, batch_offset
                   in _ROOT_ENTRY.iter_unpack(bytes(body[pos:pos + roots_len]))]
        pos += roots_len
        (n_nodes,) = _U32.unpack_from(body, pos)
        pos += _U32.size
        nodes_len = n_nodes * _NODE_ENTRY.size
        if pos + nodes_len != len(body):
            return False
        # the node table stays packed (sorted by hash, bisected on demand)
        # so the open is flat in node count; offsets are only spot-checked
        # at the table's edges — the CRC already vouches for the rest, and
        # a fabricated offset fails closed (miss / short read), it cannot
        # fabricate node bytes
        node_blob = bytes(body[pos:pos + nodes_len])
        for i in (0, n_nodes - 1) if n_nodes else ():
            _, offset, length = _NODE_ENTRY.unpack_from(
                node_blob, i * _NODE_ENTRY.size)
            if offset < data_start or offset + length > start:
                return False
        for _, batch_offset in history:
            if not data_start <= batch_offset < start:
                return False
        self._index = _PackedNodeIndex(node_blob, n_nodes)
        self._root_history = history
        self._last_root = history[-1][0] if history else KECCAK_EMPTY_RLP
        self.stats.batches_recovered = len(history)
        # strip the footer: the live file is a pure batch log again, so
        # appends and any later torn-tail recovery see the format unchanged
        self._fh.truncate(start)
        self._fh.flush()
        if self._sync:
            os.fsync(self._fh.fileno())
        return True

    # ------------------------------------------------------------------ #
    # Recovery
    # ------------------------------------------------------------------ #

    def _require_open(self) -> None:
        if self._closed:
            raise StoreError(f"node store {self._path} is closed")

    def _recover(self) -> None:
        """Rebuild the index: footer seek when intact, else a streaming scan.

        The scan path truncates everything after the longest valid batch
        prefix.  Validity is per-batch: marker present, all fields
        complete, CRC matches.  The scan is strictly front-to-back, so a
        corrupt byte in batch *k* invalidates batches *k..n* — later
        batches may reference nodes from the damaged one, so the committed
        root they advertise is not resolvable and keeping them would serve
        broken proofs.

        The scan *streams*: batches are parsed straight off the file handle
        with an incremental CRC, so recovering a log far bigger than RAM
        costs O(one node) of memory for values plus the offset index — the
        whole point of the disk backend is state that does not fit in
        memory, and that must include the restart path.
        """
        total = os.fstat(self._fh.fileno()).st_size
        self._fh.seek(0)
        magic = self._fh.read(len(MAGIC))
        if len(magic) < len(MAGIC) and MAGIC.startswith(magic):
            # a crash while creating the fresh log tore the header itself:
            # nothing was ever committed, so re-initialize instead of
            # refusing to open forever
            self.stats.truncated_bytes = len(magic)
            self._fh.truncate(0)
            self._fh.write(MAGIC)
            self._fh.flush()
            if self._sync:
                os.fsync(self._fh.fileno())
            return
        if magic != MAGIC:
            raise StoreError(
                f"{self._path} is not a PARP node store (bad magic {magic!r})"
            )
        offset = len(MAGIC)
        pruned = self._scan_pruned_record(offset, total)
        if pruned == "torn":
            # the front record is written atomically with the compacted
            # log, so damage here is external corruption: nothing after it
            # is trustworthy
            self.stats.truncated_bytes = total - len(MAGIC)
            self._fh.truncate(len(MAGIC))
            self._fh.flush()
            if self._sync:
                os.fsync(self._fh.fileno())
            return
        if pruned is not None:
            roots, offset = pruned
            self._pruned_order = roots
            self._pruned_set = set(roots)
        self._data_start = offset
        if self._try_indexed_open(offset, total):
            self.opened_indexed = True
            return
        index: dict[bytes, tuple[int, int]] = {}
        history: list[tuple[bytes, int]] = []
        last_root = KECCAK_EMPTY_RLP
        good_end = offset
        batches = 0
        while offset < total:
            parsed = self._scan_batch(offset, total)
            if parsed is None:
                break  # torn or corrupt suffix: stop at the last good batch
            entries, root, next_offset = parsed
            index.update(entries)
            history.append((root, offset))
            last_root = root
            offset = next_offset
            good_end = offset
            batches += 1
        if good_end < total:
            self.stats.truncated_bytes = total - good_end
            self._fh.truncate(good_end)
            self._fh.flush()
            if self._sync:
                os.fsync(self._fh.fileno())
        self._index = index
        self._root_history = history
        self._last_root = last_root
        self.stats.batches_recovered = batches

    def _scan_pruned_record(self, offset: int, total: int):
        """Parse the optional ``0xB5`` record at ``offset``.

        Returns None when absent (the byte there starts a batch or the
        footer), ``"torn"`` when present but damaged, or
        ``(roots, next_offset)``.
        """
        fh = self._fh
        if offset >= total:
            return None
        fh.seek(offset)
        marker = fh.read(1)
        if marker != _PRUNED_MARKER:
            return None
        header = fh.read(_U32.size)
        if len(header) != _U32.size:
            return "torn"
        (count,) = _U32.unpack(header)
        if count > _PRUNED_CAP:
            return "torn"
        body = fh.read(count * _HASH_LEN + _U32.size)
        if len(body) != count * _HASH_LEN + _U32.size:
            return "torn"
        payload, stored = body[:-_U32.size], body[-_U32.size:]
        if zlib.crc32(marker + header + payload) != _U32.unpack(stored)[0]:
            return "torn"
        roots = [payload[i:i + _HASH_LEN]
                 for i in range(0, len(payload), _HASH_LEN)]
        return roots, offset + 1 + _U32.size + count * _HASH_LEN + _U32.size

    def _scan_batch(self, offset: int, total: int
                    ) -> Optional[tuple[dict[bytes, tuple[int, int]],
                                        bytes, int]]:
        """Stream-parse one batch at ``offset``: (entries, root, next offset).

        Returns None on any short read, bad marker, or CRC mismatch.  The
        CRC is fed incrementally, so only one value is resident at a time.
        """
        fh = self._fh
        fh.seek(offset)
        header = fh.read(1 + _U32.size)
        if len(header) != 1 + _U32.size or header[:1] != _BATCH_MARKER:
            return None
        crc = zlib.crc32(header)
        (count,) = _U32.unpack_from(header, 1)
        pos = offset + 1 + _U32.size
        entries: dict[bytes, tuple[int, int]] = {}
        for _ in range(count):
            entry_header = fh.read(_HASH_LEN + _U32.size)
            if len(entry_header) != _HASH_LEN + _U32.size:
                return None
            crc = zlib.crc32(entry_header, crc)
            key = entry_header[:_HASH_LEN]
            (length,) = _U32.unpack_from(entry_header, _HASH_LEN)
            pos += _HASH_LEN + _U32.size
            if pos + length > total:
                return None
            value = fh.read(length)
            if len(value) != length:
                return None
            crc = zlib.crc32(value, crc)
            entries[key] = (pos, length)
            pos += length
        trailer = fh.read(_HASH_LEN + _U32.size)
        if len(trailer) != _HASH_LEN + _U32.size:
            return None
        root = trailer[:_HASH_LEN]
        crc = zlib.crc32(root, crc)
        (stored_crc,) = _U32.unpack_from(trailer, _HASH_LEN)
        if crc != stored_crc:
            return None
        return entries, root, pos + _HASH_LEN + _U32.size

    def __repr__(self) -> str:
        return (f"AppendOnlyFileStore({str(self._path)!r}, "
                f"entries={len(self._index)}, pending={len(self._pending)})")


def open_node_store(state_dir: Union[str, os.PathLike],
                    *, sync: bool = True,
                    retention: RetentionSpec = None) -> AppendOnlyFileStore:
    """Open (or create) the node store of a node's ``--state-dir``.

    The directory convention keeps room for future siblings (block index,
    receipts) next to the trie-node log.
    """
    state_dir = pathlib.Path(state_dir)
    if state_dir.exists() and not state_dir.is_dir():
        raise StoreError(
            f"{state_dir} exists but is not a directory — it looks like a "
            "bare node-store log; open it with AppendOnlyFileStore(path) "
            "or move it to <dir>/nodes.log"
        )
    state_dir.mkdir(parents=True, exist_ok=True)
    return AppendOnlyFileStore(state_dir / "nodes.log", sync=sync,
                               retention=retention)


def open_state_dir(state_dir: Union[str, os.PathLike],
                   *, sync: bool = True, retention: RetentionSpec = None):
    """Open a full node's ``--state-dir`` as its paired logs.

    Returns ``(node_store, block_log)``.  The two logs are one durable
    unit: refusing a directory that holds exactly one of them is a bugfix
    — silently reinitializing the missing sibling desynchronizes the
    recovered ``last_root`` from the block-log head (or vice versa) and
    forces a surprise rewind on the *next* restart.  The refusal happens
    before either file is created, so the directory is left exactly as
    found for the operator to repair.
    """
    from .blocklog import open_block_log

    state_dir = pathlib.Path(state_dir)
    nodes_path = state_dir / "nodes.log"
    blocks_path = state_dir / "blocks.log"
    if nodes_path.exists() != blocks_path.exists():
        present, missing = (
            (nodes_path, blocks_path) if nodes_path.exists()
            else (blocks_path, nodes_path))
        raise StoreError(
            f"state dir {state_dir} holds {present.name} but not "
            f"{missing.name}: the paired logs must be restored (and opened) "
            f"together — reinitializing {missing.name} would desynchronize "
            "the recovered state root from the chain head and force a "
            f"surprise rewind.  Restore {missing.name} from the same "
            f"snapshot, or remove {present.name} to start fresh."
        )
    store = open_node_store(state_dir, sync=sync, retention=retention)
    try:
        block_log = open_block_log(state_dir, sync=sync)
    except BaseException:
        store.close()
        raise
    return store, block_log
