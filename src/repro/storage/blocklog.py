"""Append-only, crash-safe chain-metadata log (blocks.log).

The node store (``nodes.log``) persists state trie nodes; this sibling log
persists everything else a restarting full node needs — headers, block
bodies, receipts — so the tx index and receipt map can be rebuilt and the
chain can reattach at its recovered head instead of refusing to start.

The discipline mirrors :class:`~repro.storage.filestore.AppendOnlyFileStore`:

* **Data layout** — one log file: an 8-byte magic header, then one record
  per sealed block::

      0xB2 | u32 number | u32 payload len | payload
           | 32-byte block hash | u32 crc32

  where ``payload = rlp([header, [tx…], [receipt…]])`` (each element the
  canonical encoding already used by the tx/receipt tries).  The CRC covers
  everything from the marker through the block hash.

* **Write path** — :meth:`append` serializes the block into one buffer and
  lands it with a single ``write`` + ``flush`` + ``fsync``.  The chain
  appends *after* the state commit fsyncs, so the block log can never be
  durably ahead of the node store: every recovered block's state root is
  resolvable (the node store is append-only, historical roots survive).

* **Recovery** — on open, records are scanned front-to-back.  A short
  read, bad marker, CRC mismatch, undecodable payload, hash mismatch, or
  broken parent linkage ends the valid prefix; the file is truncated back
  to the last complete block — a crash mid-append loses only the block
  that was never acknowledged.  A torn magic header (crash while creating
  the file) re-initializes instead of wedging the node forever.
"""

from __future__ import annotations

import os
import pathlib
import struct
import threading
import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Union

from ..rlp import codec as rlp
from .nodestore import StoreError

if TYPE_CHECKING:  # pragma: no cover — import cycle (chain → trie → storage)
    from ..chain.block import Block

__all__ = ["BlockLog", "BlockLogStats", "open_block_log"]

#: file signature: PARP block log, format version 1
BLOCK_LOG_MAGIC = b"PARPBL01"
_RECORD_MARKER = b"\xb2"
_U32 = struct.Struct("<I")
_HASH_LEN = 32
_PREFIX_LEN = 1 + 2 * _U32.size            # marker | number | payload len
_TRAILER_LEN = _HASH_LEN + _U32.size       # block hash | crc


@dataclass
class BlockLogStats:
    """Operational counters surfaced to benches and the serving node."""

    blocks_appended: int = 0
    bytes_appended: int = 0
    #: records found intact by the recovery scan on the most recent open
    blocks_recovered: int = 0
    #: torn/corrupt suffix bytes truncated away on the most recent open
    truncated_bytes: int = 0


def _encode_block(block: "Block") -> bytes:
    return rlp.encode([
        block.header.encode(),
        [tx.encode() for tx in block.transactions],
        [receipt.encode() for receipt in block.receipts],
    ])


def _decode_block(payload: bytes) -> "Block":
    # Deferred: repro.chain imports repro.trie imports repro.storage, so a
    # module-level import here would close the cycle.
    from ..chain.block import Block
    from ..chain.header import BlockHeader
    from ..chain.receipt import Receipt
    from ..chain.transaction import Transaction

    item = rlp.decode(payload)
    if not isinstance(item, list) or len(item) != 3:
        raise StoreError("block record payload must be a 3-item RLP list")
    header_b, tx_items, receipt_items = item
    if (not isinstance(header_b, bytes) or not isinstance(tx_items, list)
            or not isinstance(receipt_items, list)):
        raise StoreError("malformed block record payload")
    header = BlockHeader.decode(header_b)
    transactions = tuple(Transaction.decode(raw) for raw in tx_items)
    # The canonical receipt encoding carries only the cumulative gas; the
    # per-tx convenience field is re-derived from the running difference so
    # a restarted node serves byte- and field-identical receipts.
    receipts: list[Receipt] = []
    previous_cumulative = 0
    for raw in receipt_items:
        receipt = Receipt.decode(raw)
        receipts.append(Receipt(
            status=receipt.status,
            cumulative_gas_used=receipt.cumulative_gas_used,
            logs=receipt.logs,
            gas_used=receipt.cumulative_gas_used - previous_cumulative,
        ))
        previous_cumulative = receipt.cumulative_gas_used
    return Block(header=header, transactions=transactions,
                 receipts=tuple(receipts))


class BlockLog:
    """Durable block history over a single append-only log file.

    ``sync=False`` trades the per-append ``fsync`` for speed; the atomicity
    guarantee — recover to a complete block, never a torn record — holds
    either way because it comes from the CRC, not the fsync.
    """

    def __init__(self, path: Union[str, os.PathLike],
                 *, sync: bool = True) -> None:
        self._path = pathlib.Path(path)
        self._sync = sync
        self._lock = threading.Lock()
        self._closed = False
        #: a failed append that could not be truncated away wedges writes
        #: (the recovered history stays valid); reopening clears it
        self._wedged = False
        self.stats = BlockLogStats()
        #: the recovered (and since-appended) chain, oldest first — the
        #: same Block objects the Blockchain indexes, not copies
        self.blocks: list[Block] = []
        #: file offset where each record starts (parallel to ``blocks``),
        #: so a tail whose state the node store cannot resolve can be
        #: rewound record-precisely
        self._offsets: list[int] = []
        self._path.parent.mkdir(parents=True, exist_ok=True)
        fresh = not self._path.exists() or self._path.stat().st_size == 0
        self._fh = open(self._path, "a+b")
        if fresh:
            self._fh.write(BLOCK_LOG_MAGIC)
            self._fh.flush()
            if self._sync:
                os.fsync(self._fh.fileno())
        else:
            self._recover()

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #

    @property
    def path(self) -> pathlib.Path:
        return self._path

    def __len__(self) -> int:
        return len(self.blocks)

    @property
    def last_number(self) -> Optional[int]:
        return self.blocks[-1].number if self.blocks else None

    @property
    def last_hash(self) -> Optional[bytes]:
        return self.blocks[-1].hash if self.blocks else None

    # ------------------------------------------------------------------ #
    # Write path
    # ------------------------------------------------------------------ #

    def append(self, block: Block) -> None:
        """Append one sealed block as a checksummed, fsynced record."""
        if self.blocks:
            tip = self.blocks[-1]
            if block.number != tip.number + 1:
                raise StoreError(
                    f"block log expected number {tip.number + 1}, "
                    f"got {block.number}"
                )
            if block.header.parent_hash != tip.hash:
                raise StoreError(
                    f"block {block.number} does not link to the logged tip "
                    f"{tip.hash.hex()[:12]}"
                )
        payload = _encode_block(block)
        record = bytearray()
        record += _RECORD_MARKER
        record += _U32.pack(block.number)
        record += _U32.pack(len(payload))
        record += payload
        record += block.hash
        record += _U32.pack(zlib.crc32(bytes(record)))
        with self._lock:
            self._require_open()
            if self._wedged:
                raise StoreError(
                    f"block log {self._path} refused the append: a failed "
                    "write could not be truncated away, so further records "
                    "would be discarded by crash recovery"
                )
            self._fh.seek(0, os.SEEK_END)
            base = self._fh.tell()
            try:
                self._fh.write(record)
                self._fh.flush()
                if self._sync:
                    os.fsync(self._fh.fileno())
            except Exception:
                # drop the partial record so later appends do not bury a
                # torn one mid-log; if even that fails, wedge the log
                try:
                    self._fh.truncate(base)
                    self._fh.flush()
                except OSError:
                    self._wedged = True
                raise
            self.blocks.append(block)
            self._offsets.append(base)
            self.stats.blocks_appended += 1
            self.stats.bytes_appended += len(record)

    def rewind(self, count: int) -> None:
        """Drop the last ``count`` records (truncate the file to match).

        Used on reattach when the tail of the log references state the node
        store cannot resolve (e.g. the operator restored ``nodes.log`` from
        an older copy than ``blocks.log``).
        """
        if count <= 0:
            return
        if count > len(self.blocks):
            raise StoreError(
                f"cannot rewind {count} blocks: log holds {len(self.blocks)}"
            )
        with self._lock:
            self._require_open()
            base = self._offsets[len(self.blocks) - count]
            self._fh.truncate(base)
            self._fh.flush()
            if self._sync:
                os.fsync(self._fh.fileno())
            del self.blocks[len(self.blocks) - count:]
            del self._offsets[len(self._offsets) - count:]

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._fh.close()

    # ------------------------------------------------------------------ #
    # Recovery
    # ------------------------------------------------------------------ #

    def _require_open(self) -> None:
        if self._closed:
            raise StoreError(f"block log {self._path} is closed")

    def _recover(self) -> None:
        """Rebuild the block list from the longest valid prefix.

        Validity is per-record *and* chain-structural: the CRC must match,
        the stored hash must equal the decoded header's hash, and each
        block must link to the previous record by number and parent hash.
        The scan is front-to-back, so the first bad record invalidates
        everything after it — later blocks build on the damaged one.
        """
        total = os.fstat(self._fh.fileno()).st_size
        self._fh.seek(0)
        magic = self._fh.read(len(BLOCK_LOG_MAGIC))
        if len(magic) < len(BLOCK_LOG_MAGIC) and BLOCK_LOG_MAGIC.startswith(magic):
            # a crash while creating the fresh log tore the header itself:
            # nothing was ever logged, so re-initialize
            self.stats.truncated_bytes = len(magic)
            self._fh.truncate(0)
            self._fh.write(BLOCK_LOG_MAGIC)
            self._fh.flush()
            if self._sync:
                os.fsync(self._fh.fileno())
            return
        if magic != BLOCK_LOG_MAGIC:
            raise StoreError(
                f"{self._path} is not a PARP block log (bad magic {magic!r})"
            )
        offset = len(BLOCK_LOG_MAGIC)
        good_end = offset
        while offset < total:
            parsed = self._scan_record(offset, total)
            if parsed is None:
                break  # torn or corrupt suffix: stop at the last good block
            block, next_offset = parsed
            if self.blocks:
                tip = self.blocks[-1]
                if (block.number != tip.number + 1
                        or block.header.parent_hash != tip.hash):
                    break
            self.blocks.append(block)
            self._offsets.append(offset)
            offset = next_offset
            good_end = offset
        if good_end < total:
            self.stats.truncated_bytes = total - good_end
            self._fh.truncate(good_end)
            self._fh.flush()
            if self._sync:
                os.fsync(self._fh.fileno())
        self.stats.blocks_recovered = len(self.blocks)

    def _scan_record(self, offset: int, total: int
                     ) -> Optional[tuple[Block, int]]:
        """Parse one record at ``offset``; returns (block, next offset) or
        None on any short read, bad marker, CRC mismatch, or decode error."""
        fh = self._fh
        fh.seek(offset)
        prefix = fh.read(_PREFIX_LEN)
        if len(prefix) != _PREFIX_LEN or prefix[:1] != _RECORD_MARKER:
            return None
        (number,) = _U32.unpack_from(prefix, 1)
        (payload_len,) = _U32.unpack_from(prefix, 1 + _U32.size)
        end = offset + _PREFIX_LEN + payload_len + _TRAILER_LEN
        if end > total:
            return None
        payload = fh.read(payload_len)
        if len(payload) != payload_len:
            return None
        trailer = fh.read(_TRAILER_LEN)
        if len(trailer) != _TRAILER_LEN:
            return None
        block_hash = trailer[:_HASH_LEN]
        (stored_crc,) = _U32.unpack_from(trailer, _HASH_LEN)
        crc = zlib.crc32(prefix)
        crc = zlib.crc32(payload, crc)
        crc = zlib.crc32(block_hash, crc)
        if crc != stored_crc:
            return None
        try:
            block = _decode_block(payload)
        except Exception:  # noqa: BLE001 — any decode failure ends the prefix
            return None
        if block.number != number or block.hash != block_hash:
            return None
        return block, end

    def __repr__(self) -> str:
        head = self.last_number if self.blocks else "empty"
        return f"BlockLog({str(self._path)!r}, head={head})"


def open_block_log(state_dir: Union[str, os.PathLike],
                   *, sync: bool = True) -> BlockLog:
    """Open (or create) the chain-metadata log of a node's ``--state-dir``.

    Lives next to ``nodes.log`` (see :func:`open_node_store`); together the
    two files are the complete durable footprint of a full node.
    """
    state_dir = pathlib.Path(state_dir)
    if state_dir.exists() and not state_dir.is_dir():
        raise StoreError(
            f"{state_dir} exists but is not a directory — open a bare log "
            "with BlockLog(path) or move it to <dir>/blocks.log"
        )
    state_dir.mkdir(parents=True, exist_ok=True)
    return BlockLog(state_dir / "blocks.log", sync=sync)
