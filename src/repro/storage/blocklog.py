"""Append-only, crash-safe chain-metadata log (blocks.log).

The node store (``nodes.log``) persists state trie nodes; this sibling log
persists everything else a restarting full node needs — headers, block
bodies, receipts — so the tx index and receipt map can be rebuilt and the
chain can reattach at its recovered head instead of refusing to start.

The discipline mirrors :class:`~repro.storage.filestore.AppendOnlyFileStore`:

* **Data layout** — one log file: an 8-byte magic header, then (on a
  pruned log only) one *anchor record*::

      0xB4 | u32 first number | 32-byte genesis hash
           | 32-byte parent hash | u32 crc32

  then one record per sealed block::

      0xB2 | u32 number | u32 payload len | payload
           | 32-byte block hash | u32 crc32

  where ``payload = rlp([header, [tx…], [receipt…]])`` (each element the
  canonical encoding already used by the tx/receipt tries).  The CRC covers
  everything from the marker through the block hash.  The anchor is what
  :meth:`prune_to` leaves behind when it drops history below the retention
  window: the first retained number, the hash of the genesis block the log
  no longer physically holds (so reattach can still refuse a foreign
  directory), and the parent hash the first retained record must link to.

* **Write path** — :meth:`append` serializes the block into one buffer and
  lands it with a single ``write`` + ``flush`` + ``fsync``.  The chain
  appends *after* the state commit fsyncs, so the block log can never be
  durably ahead of the node store: every recovered block's state root is
  resolvable (the node store is append-only, historical roots survive).

* **Recovery** — on open, records are scanned front-to-back.  A short
  read, bad marker, CRC mismatch, undecodable payload, hash mismatch, or
  broken parent linkage ends the valid prefix; the file is truncated back
  to the last complete block — a crash mid-append loses only the block
  that was never acknowledged.  A torn magic header (crash while creating
  the file) re-initializes instead of wedging the node forever.
"""

from __future__ import annotations

import os
import pathlib
import struct
import threading
import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Union

from ..rlp import codec as rlp
from .nodestore import StoreError

if TYPE_CHECKING:  # pragma: no cover — import cycle (chain → trie → storage)
    from ..chain.block import Block

__all__ = ["BlockLog", "BlockLogAnchor", "BlockLogStats", "open_block_log"]

#: file signature: PARP block log, format version 1
BLOCK_LOG_MAGIC = b"PARPBL01"
_RECORD_MARKER = b"\xb2"
_ANCHOR_MARKER = b"\xb4"
_U32 = struct.Struct("<I")
_HASH_LEN = 32
_PREFIX_LEN = 1 + 2 * _U32.size            # marker | number | payload len
_TRAILER_LEN = _HASH_LEN + _U32.size       # block hash | crc
_ANCHOR_LEN = 1 + _U32.size + 2 * _HASH_LEN + _U32.size


@dataclass
class BlockLogStats:
    """Operational counters surfaced to benches and the serving node.

    Like :class:`~repro.storage.filestore.FileStoreStats`, every counter
    is per-open: a fresh handle starts at zero regardless of how much
    history the file holds.
    """

    blocks_appended: int = 0
    bytes_appended: int = 0
    #: records found intact by the recovery scan on the most recent open
    blocks_recovered: int = 0
    #: torn/corrupt suffix bytes truncated away on the most recent open
    truncated_bytes: int = 0
    #: records dropped below the retention window by :meth:`BlockLog.prune_to`
    blocks_pruned: int = 0
    #: log bytes reclaimed by pruning
    bytes_reclaimed: int = 0


@dataclass(frozen=True)
class BlockLogAnchor:
    """What a pruned log remembers about the history it dropped."""

    #: number of the first record physically present
    first_number: int
    #: hash of block 0 — the chain-identity check for reattach
    genesis_hash: bytes
    #: parent hash the first retained record must link to
    parent_hash: bytes

    def encode(self) -> bytes:
        record = (_ANCHOR_MARKER + _U32.pack(self.first_number)
                  + self.genesis_hash + self.parent_hash)
        return record + _U32.pack(zlib.crc32(record))

    @classmethod
    def decode(cls, data: bytes) -> Optional["BlockLogAnchor"]:
        """Parse an anchor record; None when torn or corrupt."""
        if len(data) != _ANCHOR_LEN or data[:1] != _ANCHOR_MARKER:
            return None
        (stored_crc,) = _U32.unpack_from(data, _ANCHOR_LEN - _U32.size)
        if zlib.crc32(data[:-_U32.size]) != stored_crc:
            return None
        (first_number,) = _U32.unpack_from(data, 1)
        genesis = data[1 + _U32.size:1 + _U32.size + _HASH_LEN]
        parent = data[1 + _U32.size + _HASH_LEN:1 + _U32.size + 2 * _HASH_LEN]
        return cls(first_number=first_number, genesis_hash=genesis,
                   parent_hash=parent)


def _encode_block(block: "Block") -> bytes:
    return rlp.encode([
        block.header.encode(),
        [tx.encode() for tx in block.transactions],
        [receipt.encode() for receipt in block.receipts],
    ])


def _encode_record(block: "Block") -> bytes:
    """One complete on-disk record for ``block`` (marker through CRC)."""
    payload = _encode_block(block)
    record = bytearray()
    record += _RECORD_MARKER
    record += _U32.pack(block.number)
    record += _U32.pack(len(payload))
    record += payload
    record += block.hash
    record += _U32.pack(zlib.crc32(bytes(record)))
    return bytes(record)


def _decode_block(payload: bytes) -> "Block":
    # Deferred: repro.chain imports repro.trie imports repro.storage, so a
    # module-level import here would close the cycle.
    from ..chain.block import Block
    from ..chain.header import BlockHeader
    from ..chain.receipt import Receipt
    from ..chain.transaction import Transaction

    item = rlp.decode(payload)
    if not isinstance(item, list) or len(item) != 3:
        raise StoreError("block record payload must be a 3-item RLP list")
    header_b, tx_items, receipt_items = item
    if (not isinstance(header_b, bytes) or not isinstance(tx_items, list)
            or not isinstance(receipt_items, list)):
        raise StoreError("malformed block record payload")
    header = BlockHeader.decode(header_b)
    transactions = tuple(Transaction.decode(raw) for raw in tx_items)
    # The canonical receipt encoding carries only the cumulative gas; the
    # per-tx convenience field is re-derived from the running difference so
    # a restarted node serves byte- and field-identical receipts.
    receipts: list[Receipt] = []
    previous_cumulative = 0
    for raw in receipt_items:
        receipt = Receipt.decode(raw)
        receipts.append(Receipt(
            status=receipt.status,
            cumulative_gas_used=receipt.cumulative_gas_used,
            logs=receipt.logs,
            gas_used=receipt.cumulative_gas_used - previous_cumulative,
        ))
        previous_cumulative = receipt.cumulative_gas_used
    return Block(header=header, transactions=transactions,
                 receipts=tuple(receipts))


class BlockLog:
    """Durable block history over a single append-only log file.

    ``sync=False`` trades the per-append ``fsync`` for speed; the atomicity
    guarantee — recover to a complete block, never a torn record — holds
    either way because it comes from the CRC, not the fsync.
    """

    def __init__(self, path: Union[str, os.PathLike],
                 *, sync: bool = True) -> None:
        self._path = pathlib.Path(path)
        self._sync = sync
        self._lock = threading.Lock()
        self._closed = False
        #: a failed append that could not be truncated away wedges writes
        #: (the recovered history stays valid); reopening clears it
        self._wedged = False
        self.stats = BlockLogStats()
        #: the recovered (and since-appended) chain, oldest first — the
        #: same Block objects the Blockchain indexes, not copies
        self.blocks: list[Block] = []
        #: file offset where each record starts (parallel to ``blocks``),
        #: so a tail whose state the node store cannot resolve can be
        #: rewound record-precisely
        self._offsets: list[int] = []
        #: present iff history below some height was pruned away
        self.anchor: Optional[BlockLogAnchor] = None
        self._path.parent.mkdir(parents=True, exist_ok=True)
        # a crash mid-prune (before the rename) leaves the half-built
        # replacement behind; it was never promoted, so it is garbage
        self._tmp_path().unlink(missing_ok=True)
        fresh = not self._path.exists() or self._path.stat().st_size == 0
        self._fh = open(self._path, "a+b")
        if fresh:
            self._fh.write(BLOCK_LOG_MAGIC)
            self._fh.flush()
            if self._sync:
                os.fsync(self._fh.fileno())
        else:
            self._recover()

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #

    @property
    def path(self) -> pathlib.Path:
        return self._path

    def __len__(self) -> int:
        return len(self.blocks)

    @property
    def last_number(self) -> Optional[int]:
        return self.blocks[-1].number if self.blocks else None

    @property
    def last_hash(self) -> Optional[bytes]:
        return self.blocks[-1].hash if self.blocks else None

    @property
    def first_number(self) -> int:
        """Number of the first block this log can replay (0 unless pruned)."""
        if self.anchor is not None:
            return self.anchor.first_number
        return self.blocks[0].number if self.blocks else 0

    @property
    def genesis_hash(self) -> Optional[bytes]:
        """Hash of block 0, even when pruning dropped the record itself."""
        if self.anchor is not None:
            return self.anchor.genesis_hash
        if self.blocks and self.blocks[0].number == 0:
            return self.blocks[0].hash
        return None

    # ------------------------------------------------------------------ #
    # Write path
    # ------------------------------------------------------------------ #

    def append(self, block: Block) -> None:
        """Append one sealed block as a checksummed, fsynced record."""
        if self.blocks:
            tip = self.blocks[-1]
            if block.number != tip.number + 1:
                raise StoreError(
                    f"block log expected number {tip.number + 1}, "
                    f"got {block.number}"
                )
            if block.header.parent_hash != tip.hash:
                raise StoreError(
                    f"block {block.number} does not link to the logged tip "
                    f"{tip.hash.hex()[:12]}"
                )
        elif self.anchor is not None:
            # an anchored-but-emptied log (every retained record rewound)
            # still enforces where history restarts
            if (block.number != self.anchor.first_number
                    or block.header.parent_hash != self.anchor.parent_hash):
                raise StoreError(
                    f"pruned block log restarts at number "
                    f"{self.anchor.first_number} linking to "
                    f"{self.anchor.parent_hash.hex()[:12]}, got block "
                    f"{block.number}"
                )
        record = _encode_record(block)
        with self._lock:
            self._require_open()
            if self._wedged:
                raise StoreError(
                    f"block log {self._path} refused the append: a failed "
                    "write could not be truncated away, so further records "
                    "would be discarded by crash recovery"
                )
            self._fh.seek(0, os.SEEK_END)
            base = self._fh.tell()
            try:
                self._fh.write(record)
                self._fh.flush()
                if self._sync:
                    os.fsync(self._fh.fileno())
            except Exception:
                # drop the partial record so later appends do not bury a
                # torn one mid-log; if even that fails, wedge the log
                try:
                    self._fh.truncate(base)
                    self._fh.flush()
                except OSError:
                    self._wedged = True
                raise
            self.blocks.append(block)
            self._offsets.append(base)
            self.stats.blocks_appended += 1
            self.stats.bytes_appended += len(record)

    def rewind(self, count: int) -> None:
        """Drop the last ``count`` records (truncate the file to match).

        Used on reattach when the tail of the log references state the node
        store cannot resolve (e.g. the operator restored ``nodes.log`` from
        an older copy than ``blocks.log``).
        """
        if count <= 0:
            return
        if count > len(self.blocks):
            raise StoreError(
                f"cannot rewind {count} blocks: log holds {len(self.blocks)}"
            )
        with self._lock:
            self._require_open()
            base = self._offsets[len(self.blocks) - count]
            self._fh.truncate(base)
            self._fh.flush()
            if self._sync:
                os.fsync(self._fh.fileno())
            del self.blocks[len(self.blocks) - count:]
            del self._offsets[len(self._offsets) - count:]

    def _tmp_path(self) -> pathlib.Path:
        return self._path.with_name(self._path.name + ".compact")

    def _fsync_dir(self) -> None:
        if not self._sync:
            return
        try:
            dir_fd = os.open(self._path.parent, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform-dependent
            return
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)

    def prune_to(self, first_number: int) -> int:
        """Drop every record below ``first_number``; returns the count dropped.

        The surviving history is rewritten — anchor record first, then the
        retained records — into ``<path>.compact``, fsynced, and promoted
        by ``os.replace`` + a directory fsync, so a crash at any byte
        offset leaves either the complete old log or the complete new one.

        The chain layer calls this *before* compacting ``nodes.log``: a
        crash between the two steps leaves the node store a superset of
        what this log references (harmless), never the reverse — so the
        log can never demand a pruned root.
        """
        with self._lock:
            self._require_open()
            if self._wedged:
                raise StoreError(
                    f"block log {self._path} is wedged; reopen it before "
                    "pruning")
            current_first = self.first_number
            if first_number <= current_first:
                return 0
            if not self.blocks or first_number > self.blocks[-1].number:
                raise StoreError(
                    f"cannot prune to {first_number}: the log ends at "
                    f"{self.blocks[-1].number if self.blocks else current_first}"
                )
            genesis = self.genesis_hash
            if genesis is None:  # pragma: no cover - logs start at genesis
                raise StoreError(
                    f"block log {self._path} has no genesis binding to "
                    "carry through a prune")
            drop = first_number - self.blocks[0].number
            keep = self.blocks[drop:]
            anchor = BlockLogAnchor(
                first_number=first_number,
                genesis_hash=genesis,
                parent_hash=keep[0].header.parent_hash,
            )
            before = os.fstat(self._fh.fileno()).st_size
            tmp = self._tmp_path()
            offsets: list[int] = []
            try:
                with open(tmp, "wb") as out:
                    out.write(BLOCK_LOG_MAGIC)
                    out.write(anchor.encode())
                    pos = out.tell()
                    for block in keep:
                        record = _encode_record(block)
                        out.write(record)
                        offsets.append(pos)
                        pos += len(record)
                    out.flush()
                    os.fsync(out.fileno())
            except Exception:
                tmp.unlink(missing_ok=True)
                raise
            os.replace(tmp, self._path)
            self._fsync_dir()
            old_fh = self._fh
            self._fh = open(self._path, "a+b")
            old_fh.close()
            self.blocks = list(keep)
            self._offsets = offsets
            self.anchor = anchor
            after = os.fstat(self._fh.fileno()).st_size
            self.stats.blocks_pruned += drop
            self.stats.bytes_reclaimed += max(0, before - after)
            return drop

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._fh.close()

    # ------------------------------------------------------------------ #
    # Recovery
    # ------------------------------------------------------------------ #

    def _require_open(self) -> None:
        if self._closed:
            raise StoreError(f"block log {self._path} is closed")

    def _recover(self) -> None:
        """Rebuild the block list from the longest valid prefix.

        Validity is per-record *and* chain-structural: the CRC must match,
        the stored hash must equal the decoded header's hash, and each
        block must link to the previous record by number and parent hash.
        The scan is front-to-back, so the first bad record invalidates
        everything after it — later blocks build on the damaged one.
        """
        total = os.fstat(self._fh.fileno()).st_size
        self._fh.seek(0)
        magic = self._fh.read(len(BLOCK_LOG_MAGIC))
        if len(magic) < len(BLOCK_LOG_MAGIC) and BLOCK_LOG_MAGIC.startswith(magic):
            # a crash while creating the fresh log tore the header itself:
            # nothing was ever logged, so re-initialize
            self.stats.truncated_bytes = len(magic)
            self._fh.truncate(0)
            self._fh.write(BLOCK_LOG_MAGIC)
            self._fh.flush()
            if self._sync:
                os.fsync(self._fh.fileno())
            return
        if magic != BLOCK_LOG_MAGIC:
            raise StoreError(
                f"{self._path} is not a PARP block log (bad magic {magic!r})"
            )
        offset = len(BLOCK_LOG_MAGIC)
        # a pruned log leads with its anchor record; a torn anchor ends the
        # valid prefix before any block (the records after it link to an
        # unverifiable restart point)
        self._fh.seek(offset)
        peek = self._fh.read(1)
        if peek == _ANCHOR_MARKER:
            self._fh.seek(offset)
            self.anchor = BlockLogAnchor.decode(self._fh.read(_ANCHOR_LEN))
            if self.anchor is None:
                self.stats.truncated_bytes = total - offset
                self._fh.truncate(offset)
                self._fh.flush()
                if self._sync:
                    os.fsync(self._fh.fileno())
                return
            offset += _ANCHOR_LEN
        good_end = offset
        while offset < total:
            parsed = self._scan_record(offset, total)
            if parsed is None:
                break  # torn or corrupt suffix: stop at the last good block
            block, next_offset = parsed
            if self.blocks:
                tip = self.blocks[-1]
                if (block.number != tip.number + 1
                        or block.header.parent_hash != tip.hash):
                    break
            elif self.anchor is not None:
                if (block.number != self.anchor.first_number
                        or block.header.parent_hash
                        != self.anchor.parent_hash):
                    break
            self.blocks.append(block)
            self._offsets.append(offset)
            offset = next_offset
            good_end = offset
        if good_end < total:
            self.stats.truncated_bytes = total - good_end
            self._fh.truncate(good_end)
            self._fh.flush()
            if self._sync:
                os.fsync(self._fh.fileno())
        self.stats.blocks_recovered = len(self.blocks)

    def _scan_record(self, offset: int, total: int
                     ) -> Optional[tuple[Block, int]]:
        """Parse one record at ``offset``; returns (block, next offset) or
        None on any short read, bad marker, CRC mismatch, or decode error."""
        fh = self._fh
        fh.seek(offset)
        prefix = fh.read(_PREFIX_LEN)
        if len(prefix) != _PREFIX_LEN or prefix[:1] != _RECORD_MARKER:
            return None
        (number,) = _U32.unpack_from(prefix, 1)
        (payload_len,) = _U32.unpack_from(prefix, 1 + _U32.size)
        end = offset + _PREFIX_LEN + payload_len + _TRAILER_LEN
        if end > total:
            return None
        payload = fh.read(payload_len)
        if len(payload) != payload_len:
            return None
        trailer = fh.read(_TRAILER_LEN)
        if len(trailer) != _TRAILER_LEN:
            return None
        block_hash = trailer[:_HASH_LEN]
        (stored_crc,) = _U32.unpack_from(trailer, _HASH_LEN)
        crc = zlib.crc32(prefix)
        crc = zlib.crc32(payload, crc)
        crc = zlib.crc32(block_hash, crc)
        if crc != stored_crc:
            return None
        try:
            block = _decode_block(payload)
        except Exception:  # noqa: BLE001 — any decode failure ends the prefix
            return None
        if block.number != number or block.hash != block_hash:
            return None
        return block, end

    def __repr__(self) -> str:
        head = self.last_number if self.blocks else "empty"
        return f"BlockLog({str(self._path)!r}, head={head})"


def open_block_log(state_dir: Union[str, os.PathLike],
                   *, sync: bool = True) -> BlockLog:
    """Open (or create) the chain-metadata log of a node's ``--state-dir``.

    Lives next to ``nodes.log`` (see :func:`open_node_store`); together the
    two files are the complete durable footprint of a full node.
    """
    state_dir = pathlib.Path(state_dir)
    if state_dir.exists() and not state_dir.is_dir():
        raise StoreError(
            f"{state_dir} exists but is not a directory — open a bare log "
            "with BlockLog(path) or move it to <dir>/blocks.log"
        )
    state_dir.mkdir(parents=True, exist_ok=True)
    return BlockLog(state_dir / "blocks.log", sync=sync)
